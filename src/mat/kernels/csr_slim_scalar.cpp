// Scalar Kestrel Slim CSR SpMV reference. Branches once per multiply on the
// slim mode flags (idx16 / fp32) and walks rows exactly like the fat scalar
// kernel, so it doubles as the differential oracle for the vector tiers:
// compressed columns resolve to base[i] + off16[k], and fp32 values are
// widened to double before the multiply so accumulation is always double.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_slim isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_slim_spmv_scalar
// argus-param: a : view CsrSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr_slim
void csr_slim_spmv_scalar(const CsrSlimView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index r0 = a.rowptr[i];
    const Index r1 = a.rowptr[i + 1];
    Scalar sum = 0.0;
    if (a.idx16 != 0) {
      const Index b = a.base[i];
      if (a.fp32 != 0) {
        for (Index k = r0; k < r1; ++k) {
          const Scalar v = a.val32[k];
          sum += v * x[b + a.off16[k]];
        }
      } else {
        for (Index k = r0; k < r1; ++k) {
          sum += a.val[k] * x[b + a.off16[k]];
        }
      }
    } else {
      // fp32-only mode: fat column indices, float values.
      for (Index k = r0; k < r1; ++k) {
        const Scalar v = a.val32[k];
        sum += v * x[a.colidx[k]];
      }
    }
    y[i] = sum;
  }
}

}  // namespace

void register_csr_slim_scalar() {
  KESTREL_REGISTER_KERNEL(kCsrSlimSpmv, kScalar, csr_slim_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
