#pragma once
// Kestrel Aegis ABFT (algorithm-based fault tolerance) for SpMV.
//
// The classical Huang–Abraham column-checksum invariant: with
// c = Aᵀ·1 precomputed at assembly (from the format's own storage, via
// Matrix::abft_col_checksum), every fault-free multiply y = A·x satisfies
//   c·x == Σᵢ yᵢ
// up to rounding. AbftMatrix wraps any registered format and verifies that
// invariant after each spmv: a silent bit flip in the value stream, in x,
// or in y throws the two sums apart by (roughly) the flipped magnitude,
// far outside the rounding band. On a mismatch the multiply is recomputed
// once — a transient fault (corrupted x/y read, soft error during the
// kernel) heals; a persistent one (corrupted matrix values) fails again
// and escalates to a structured AbftError.
//
// The verification is two O(n) dot/sum passes per multiply, reported
// through KESTREL_PROF_SPMV as AbftVerify so -log_view / BENCH_spmv.json
// expose the overhead (target <10% of the SpMV itself on the fig08 set).
//
// Detection threshold: |c·x − Σy| ≤ tol·scale, where scale accumulates the
// absolute sums of both reductions. The default tol (1e-8) sits ~6 orders
// of magnitude above double rounding noise for n up to ~1e7 rows while
// still catching any flip in an exponent or high-mantissa bit; flips in
// the lowest few mantissa bits perturb the result by less than the
// tolerance band and are indistinguishable from rounding by design.

#include <functional>

#include "mat/matrix.hpp"
#include "vec/vector.hpp"

namespace kestrel::aegis {

/// Tier-dispatched verification reductions (scalar / AVX2 / AVX-512,
/// selected at runtime): s = Σ cᵢxᵢ resp. Σ yᵢ, plus the absolute sum that
/// sets the rounding scale. Exposed so the ParMatrix ABFT path shares the
/// vectorized passes.
void dot_abs(const Scalar* c, const Scalar* x, Index n, Scalar* s,
             Scalar* abs_s);
void sum_abs(const Scalar* y, Index n, Scalar* s, Scalar* abs_s);

struct AbftOptions {
  Scalar tol = 1e-8;  ///< relative detection threshold (see header comment)
  int max_retries = 1;  ///< recompute attempts before escalating
  /// Verify every k-th multiply (default: every one). The verification
  /// passes stream 3 vectors against the multiply's ~nnz/row·1.5 — a hard
  /// memory-traffic floor of ~24/(12·nnz/row + 16) — so on fast formats
  /// (SELL-AVX512 at nnz/row = 10: ~18%) sampled verification is the only
  /// way under a tighter budget; k = 2 halves the overhead at the cost of
  /// leaving alternate multiplies unchecked (EXPERIMENTS.md §ABFT).
  int verify_every = 1;
};

class AbftMatrix final : public mat::Matrix {
 public:
  explicit AbftMatrix(mat::MatrixPtr inner, AbftOptions opts = {});

  // Matrix interface — forwards to the wrapped format, with spmv verified.
  Index rows() const override { return inner_->rows(); }
  Index cols() const override { return inner_->cols(); }
  std::int64_t nnz() const override { return inner_->nnz(); }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  /// Wide multiplies bypass verification: they run the inner fat double
  /// path (the refinement outer loop verifies its own residual products).
  void spmv_wide(const Scalar* x, Scalar* y) const override {
    inner_->spmv_wide(x, y);
  }
  /// Kestrel Slim state is the wrapped format's (the inner matrix must be
  /// slimmed before wrapping — MatrixPtr is const, so set_slim declines).
  bool slim_active() const override { return inner_->slim_active(); }
  void get_diagonal(Vector& d) const override { inner_->get_diagonal(d); }
  void abft_col_checksum(Vector& c) const override { c.copy_from(colsum_); }
  std::string format_name() const override {
    return "abft(" + inner_->format_name() + ")";
  }
  std::size_t storage_bytes() const override;
  std::size_t spmv_traffic_bytes() const override {
    return inner_->spmv_traffic_bytes();
  }

  const mat::Matrix& inner() const { return *inner_; }
  const Vector& col_checksum() const { return colsum_; }

  /// Test / fault-injection hook: the callback corrupts (y, rows) once,
  /// right after the next inner multiply — modeling a transient soft error
  /// that the recompute-retry recovers from.
  void inject_fault_once(std::function<void(Scalar*, Index)> f) const {
    inject_once_ = std::move(f);
  }

  /// One verification pass: returns the drift |c·x − Σy| and whether it is
  /// within tolerance. Exposed for tests and the ParMatrix ABFT path.
  static bool verify(const Vector& colsum, const Scalar* x, const Scalar* y,
                     Index ylen, Scalar tol, Scalar* drift_out);

 private:
  /// Detection threshold actually used: when the wrapped matrix streams
  /// fp32 values (Kestrel Slim), the checksum c (built from the fat double
  /// values) and the fp32 multiply legitimately disagree at single-precision
  /// rounding, so the band widens to keep fault detection meaningful
  /// instead of tripping on every multiply.
  Scalar effective_tol() const;

  mat::MatrixPtr inner_;
  AbftOptions opts_;
  Vector colsum_;  ///< c = Aᵀ·1, fixed at construction
  mutable std::uint64_t calls_ = 0;  ///< for verify_every sampling
  mutable std::function<void(Scalar*, Index)> inject_once_;
};

}  // namespace kestrel::aegis
