#pragma once
// Shared helpers for the figure-reproduction benches: workload builders,
// wall-clock kernel timing, and table formatting.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "app/gray_scott.hpp"
#include "prof/profiler.hpp"
#include "mat/csr.hpp"
#include "mat/matrix.hpp"
#include "vec/vector.hpp"

namespace kestrel::bench {

/// Smoke mode (--smoke): run one tiny iteration of everything so CI can
/// verify the bench binaries execute end to end. The numbers it prints are
/// wiring checks, not measurements.
inline bool& smoke_mode() {
  static bool on = false;
  return on;
}

/// Output path for the machine-readable metrics file (--json PATH);
/// empty when not requested. Only some benches emit one.
inline std::string& json_path() {
  static std::string path;
  return path;
}

/// Measurement-time floor in seconds (--min-time SECONDS): every timing
/// loop keeps iterating until it has spent at least this long, instead of
/// stopping after a fixed repetition count. 0 (the default) keeps each
/// bench's built-in budget. Useful on noisy machines: `--min-time 2`
/// trades wall-clock for a tighter best-of distribution.
inline double& min_time() {
  static double seconds = 0.0;
  return seconds;
}

/// Parses the flags shared by every figure bench: --smoke, --json PATH,
/// --min-time SECONDS. Unknown arguments are ignored so wrappers can pass
/// extras through.
inline void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke_mode() = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path() = argv[++i];
    } else if (arg == "--min-time" && i + 1 < argc) {
      min_time() = std::strtod(argv[++i], nullptr);
    }
  }
}

/// Problem-size helper: the real size normally, a tiny one under --smoke.
inline Index scaled(Index full, Index tiny = 32) {
  return smoke_mode() ? tiny : full;
}

/// Repetition-count helper for benches with their own timing loops.
inline int scaled_reps(int full, int tiny = 1) {
  return smoke_mode() ? tiny : full;
}

/// Time-budget helper: 0 under --smoke (pair with a do-while so exactly
/// one iteration still runs).
inline double scaled_seconds(double full) {
  return smoke_mode() ? 0.0 : full;
}

/// The paper's test matrix at a laptop-scale resolution: the Gray–Scott
/// Jacobian at the initial condition (10 nonzeros in every row).
inline mat::Csr gray_scott_matrix(Index n) {
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);
  return gs.rhs_jacobian(u);
}

/// Best-of-k timing of y = A x. Returns seconds per multiply. A --min-time
/// flag raises the measurement-time floor over the caller's default (fixed
/// time instead of fixed iterations); --smoke overrides both to one rep.
inline double time_spmv(const mat::Matrix& a, int min_reps = 20,
                        double min_seconds = 0.15) {
  if (min_time() > min_seconds) min_seconds = min_time();
  if (smoke_mode()) {
    min_reps = 1;
    min_seconds = 0.0;
  }
  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  // warm up (page in the matrix)
  a.spmv(x.data(), y.data());

  double best = 1e300;
  double spent = 0.0;
  int reps = 0;
  while (reps < min_reps || spent < min_seconds) {
    const double t0 = wall_time();
    a.spmv(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
    spent += dt;
    ++reps;
  }
  // keep y alive
  volatile double sink = y[0];
  (void)sink;
  return best;
}

inline double gflops(const mat::Matrix& a, double seconds) {
  return 2.0 * static_cast<double>(a.nnz()) / seconds / 1e9;
}

inline double achieved_gbs(const mat::Matrix& a, double seconds) {
  return static_cast<double>(a.spmv_traffic_bytes()) / seconds / 1e9;
}

inline void header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

}  // namespace kestrel::bench
