"""Argus symbolic polynomial domain.

Abstract values and proof obligations are integer polynomials over *atoms*:

  Sym(name)          -- a named integer symbol: a view field ("a.m"), a kernel
                        parameter extent ("x#len"), or a fresh loop symbol.
  ArrElem(arr, idx)  -- the value of integer array `arr` at symbolic index
                        `idx` (itself a Poly), e.g. sliceptr[s + 1]. These are
                        the atoms the monotone/telescoping rules act on.
  OpTerm(op, args)   -- an interpreted-but-nonlinear operation kept opaque at
                        the polynomial level: floor division ('div'), 'mod',
                        'ceildiv', 'popcount', 'shl', 'min', 'max'. The prover
                        linearizes each with sound bounding constraints.

A Poly is a finite map {monomial -> coefficient} plus facts-free structural
normalization; a monomial is a multiset of atoms (so bs*bs and k*bs^2 are
first-class, which the BCSR generic kernel needs).  Coefficients are exact
(int / Fraction — Fractions only appear transiently inside the prover's
Fourier–Motzkin elimination).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Tuple, Union


class Atom:
    """Base class for polynomial atoms. Subclasses are immutable/hashable."""

    __slots__ = ()

    def key(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Sym(Atom):
    name: str

    def key(self) -> str:
        return f"s:{self.name}"

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrElem(Atom):
    arr: str
    idx: "Poly"

    def key(self) -> str:
        return f"a:{self.arr}[{self.idx.key()}]"

    def __repr__(self) -> str:
        return f"{self.arr}[{self.idx}]"


@dataclass(frozen=True)
class OpTerm(Atom):
    op: str
    args: Tuple["Poly", ...]

    def key(self) -> str:
        inner = ",".join(a.key() for a in self.args)
        return f"o:{self.op}({inner})"

    def __repr__(self) -> str:
        return f"{self.op}({', '.join(map(str, self.args))})"


# A monomial is a sorted tuple of (atom, power); () is the constant monomial.
Monomial = Tuple[Tuple[Atom, int], ...]
Coeff = Union[int, Fraction]


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    powers: dict = {}
    for atom, p in a + b:
        powers[atom] = powers.get(atom, 0) + p
    return tuple(sorted(((at, p) for at, p in powers.items() if p),
                        key=lambda e: (e[0].key(), e[1])))


def _mono_key(m: Monomial) -> str:
    return "*".join(f"{at.key()}^{p}" for at, p in m)


class Poly:
    """Immutable normalized polynomial."""

    __slots__ = ("terms", "_key")

    def __init__(self, terms: dict | None = None):
        clean = {}
        for mono, c in (terms or {}).items():
            if isinstance(c, Fraction) and c.denominator == 1:
                c = int(c)
            if c != 0:
                clean[mono] = c
        object.__setattr__(self, "terms", clean)
        object.__setattr__(self, "_key", None)

    # -- constructors -------------------------------------------------------
    @staticmethod
    def const(c: Coeff) -> "Poly":
        return Poly({(): c})

    @staticmethod
    def atom(a: Atom) -> "Poly":
        return Poly({((a, 1),): 1})

    @staticmethod
    def sym(name: str) -> "Poly":
        return Poly.atom(Sym(name))

    # -- algebra ------------------------------------------------------------
    def __add__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        out = dict(self.terms)
        for m, c in other.terms.items():
            out[m] = out.get(m, 0) + c
        return Poly(out)

    def __sub__(self, other: "Poly | int") -> "Poly":
        return self + (-_coerce(other))

    def __rsub__(self, other: int) -> "Poly":
        return _coerce(other) - self

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self.terms.items()})

    def __mul__(self, other: "Poly | int") -> "Poly":
        other = _coerce(other)
        out: dict = {}
        for m1, c1 in self.terms.items():
            for m2, c2 in other.terms.items():
                m = _mono_mul(m1, m2)
                out[m] = out.get(m, 0) + c1 * c2
        return Poly(out)

    __rmul__ = __mul__

    def scale(self, q: Coeff) -> "Poly":
        return Poly({m: c * q for m, c in self.terms.items()})

    # -- inspection ---------------------------------------------------------
    def is_const(self) -> bool:
        return all(m == () for m in self.terms)

    def const_value(self) -> Coeff:
        return self.terms.get((), 0)

    def atoms(self) -> Iterable[Atom]:
        for m in self.terms:
            for at, _p in m:
                yield at

    def monomials(self) -> Iterable[Monomial]:
        return (m for m in self.terms if m != ())

    def degree(self) -> int:
        deg = 0
        for m in self.terms:
            deg = max(deg, sum(p for _a, p in m))
        return deg

    def coeff(self, mono: Monomial) -> Coeff:
        return self.terms.get(mono, 0)

    def key(self) -> str:
        if self._key is None:
            parts = sorted(f"{c}*{_mono_key(m)}" for m, c in self.terms.items())
            object.__setattr__(self, "_key", "+".join(parts) or "0")
        return self._key

    def subst_atom(self, atom: Atom, repl: "Poly") -> "Poly":
        """Replace every occurrence of `atom` with `repl` (power-expanded)."""
        out = Poly()
        for m, c in self.terms.items():
            term = Poly.const(c)
            for at, p in m:
                base = repl if at == atom else Poly.atom(at)
                for _ in range(p):
                    term = term * base
            out = out + term
        return out

    def map_atoms(self, fn) -> "Poly":
        """Rebuild the poly with fn applied to every atom (recursively through
        ArrElem indices and OpTerm args). fn returns a Poly."""
        out = Poly()
        for m, c in self.terms.items():
            term = Poly.const(c)
            for at, p in m:
                if isinstance(at, ArrElem):
                    at2 = ArrElem(at.arr, at.idx.map_atoms(fn))
                    rep = fn(at2)
                elif isinstance(at, OpTerm):
                    at2 = OpTerm(at.op, tuple(a.map_atoms(fn) for a in at.args))
                    rep = fn(at2)
                else:
                    rep = fn(at)
                for _ in range(p):
                    term = term * rep
            out = out + term
        return out

    def __eq__(self, other) -> bool:
        return isinstance(other, Poly) and self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for m, c in sorted(self.terms.items(), key=lambda e: _mono_key(e[0])):
            if m == ():
                parts.append(str(c))
            else:
                mono = "*".join(
                    (repr(at) if p == 1 else f"{at!r}^{p}") for at, p in m)
                parts.append(mono if c == 1 else f"{c}*{mono}")
        return " + ".join(parts).replace("+ -", "- ")


def _coerce(v: "Poly | int") -> Poly:
    if isinstance(v, Poly):
        return v
    return Poly.const(v)


ZERO = Poly()
ONE = Poly.const(1)


def pdiv(p: Poly, q: Poly) -> Poly:
    """Floor division as a Poly. Constant-folds exact integer cases."""
    if p.is_const() and q.is_const() and q.const_value() not in (0,):
        return Poly.const(p.const_value() // q.const_value())
    # (k * q) / q == k when the division is syntactically exact
    if q.is_const():
        d = q.const_value()
        if d != 0 and all(c % d == 0 for c in p.terms.values()):
            return p.scale(Fraction(1, d))
    return Poly.atom(OpTerm("div", (p, q)))


def pmod(p: Poly, q: Poly) -> Poly:
    if p.is_const() and q.is_const() and q.const_value() != 0:
        return Poly.const(p.const_value() % q.const_value())
    return Poly.atom(OpTerm("mod", (p, q)))


def pmin(a: Poly, b: Poly) -> Poly:
    if a == b:
        return a
    if a.is_const() and b.is_const():
        return a if a.const_value() <= b.const_value() else b
    return Poly.atom(OpTerm("min", (a, b)))


def pmax(a: Poly, b: Poly) -> Poly:
    if a == b:
        return a
    if a.is_const() and b.is_const():
        return a if a.const_value() >= b.const_value() else b
    return Poly.atom(OpTerm("max", (a, b)))


def ceildiv(p: Poly, q: Poly) -> Poly:
    if p.is_const() and q.is_const() and q.const_value() > 0:
        a, b = p.const_value(), q.const_value()
        return Poly.const(-((-a) // b))
    return Poly.atom(OpTerm("ceildiv", (p, q)))
