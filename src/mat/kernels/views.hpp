#pragma once
// POD views of matrix storage handed to the ISA-specific kernel translation
// units. Keeping these plain (no methods that touch other library headers)
// lets every kernel TU compile with only its own -m flags.

#include "base/types.hpp"

namespace kestrel::mat {

/// Compressed sparse row (PETSc AIJ). rowptr has m+1 entries.
struct CsrView {
  Index m = 0;  ///< number of rows
  Index n = 0;  ///< number of columns
  const Index* rowptr = nullptr;
  const Index* colidx = nullptr;
  const Scalar* val = nullptr;
};

/// Sliced ELLPACK (PETSc SELL), slice height `c`. For slice s the elements
/// live in val[sliceptr[s] .. sliceptr[s+1]) stored column-major within the
/// slice (c values per slice-column). rlen[i] is the true nonzero count of
/// row i (paper section 5.2); padded entries carry value 0 and a column
/// index copied from a real in-slice entry (section 5.5).
struct SellView {
  Index m = 0;          ///< logical number of rows (before slice padding)
  Index n = 0;          ///< number of columns
  Index c = 0;          ///< slice height
  Index nslices = 0;    ///< number of slices = ceil(m / c)
  const Index* sliceptr = nullptr;  ///< nslices+1 entries, offsets into val
  const Index* colidx = nullptr;
  const Scalar* val = nullptr;
  const Index* rlen = nullptr;
  /// Optional ESB-style bit mask (one bit per stored element, slice-column
  /// granularity: bit k of mask[word] corresponds to lane k). Null unless
  /// the bit-array variant was requested (ablation of paper section 5.3).
  const std::uint64_t* bitmask = nullptr;
};

/// CSR grouped by equal row length (PETSc AIJPERM). Rows are NOT reordered
/// in memory; `perm` lists row ids group by group and groups of equal-length
/// rows are vectorized across rows (paper section 2.4).
struct CsrPermView {
  CsrView csr;
  Index ngroups = 0;
  const Index* group_begin = nullptr;  ///< ngroups+1 offsets into perm
  const Index* perm = nullptr;         ///< row ids, grouped
  const Index* group_rlen = nullptr;   ///< common row length per group
};

/// SPC5-style beta(r,c) block format (Talon): rows are grouped into panels
/// of r in {1, 2, 4} adjacent rows; each panel owns a run of blocks, each
/// covering up to kZmmDoubles consecutive columns starting at block_col[b].
/// Byte j of block_mask[b] is the 8-bit column-presence mask of panel row j,
/// and the nonzero values are packed densely in (block, row, mask-bit)
/// order with NO zero padding — kernels expand them into vector lanes with
/// vpexpandpd / mask loads and advance the value pointer by popcount.
struct TalonView {
  Index m = 0;        ///< number of rows
  Index n = 0;        ///< number of columns
  Index npanels = 0;  ///< number of row panels
  /// npanels+1; panel p covers rows [panel_row[p], panel_row[p+1]), so its
  /// height r = panel_row[p+1] - panel_row[p] is 1, 2 or 4.
  const Index* panel_row = nullptr;
  const Index* panel_blockptr = nullptr;  ///< npanels+1 offsets into block_*
  const Index* panel_valptr = nullptr;    ///< npanels+1 offsets into val
  const Index* block_col = nullptr;       ///< first column of each block
  /// One 8-bit mask per panel row, packed little-endian: bit k of byte j set
  /// means A(panel_row[p] + j, block_col[b] + k) is stored.
  const std::uint32_t* block_mask = nullptr;
  const Scalar* val = nullptr;  ///< packed nonzeros, no padding
};

/// Block CSR (PETSc BAIJ) with square bs x bs blocks stored row-major per
/// block; brow/bcol are in block units.
struct BcsrView {
  Index mb = 0;  ///< number of block rows
  Index nb = 0;  ///< number of block cols
  Index bs = 0;  ///< block size
  const Index* rowptr = nullptr;  ///< mb+1, in blocks
  const Index* colidx = nullptr;  ///< block column indices
  const Scalar* val = nullptr;    ///< bs*bs scalars per block
};

}  // namespace kestrel::mat
