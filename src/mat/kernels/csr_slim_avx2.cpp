// AVX2 Kestrel Slim CSR SpMV: the compressed streams at 256-bit width.
// Four 16-bit offsets are loaded with one 8-byte movq (_mm_loadl_epi64),
// zero-extended with vpmovzxwd and rebased before the gather; fp32 values
// load four floats and widen with vcvtps2pd. Remainders are scalar like the
// fat AVX2 kernel (no masked loads below AVX-512).

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_slim isa=avx2

namespace kestrel::mat::kernels {

namespace {

inline Scalar hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

/// idx16 + fp32: base+off16 columns, float values, double accumulation.
inline Scalar row_dot_slim_if(Index b, const std::uint16_t* off,
                              const float* v32, Index len, const Scalar* x) {
  const __m128i vb = _mm_set1_epi32(b);
  __m256d acc = _mm256_setzero_pd();
  Index k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(off + k));
    const __m128i idx = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vb);
    const __m256d vals = _mm256_cvtps_pd(_mm_loadu_ps(v32 + k));
    const __m256d vx = _mm256_i32gather_pd(x, idx, 8);
    acc = _mm256_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = hsum256(acc);
  for (; k < len; ++k) {
    const Scalar v = v32[k];
    sum += v * x[b + off[k]];
  }
  return sum;
}

/// idx16 only: base+off16 columns, fat double values.
inline Scalar row_dot_slim_i(Index b, const std::uint16_t* off,
                             const Scalar* val, Index len, const Scalar* x) {
  const __m128i vb = _mm_set1_epi32(b);
  __m256d acc = _mm256_setzero_pd();
  Index k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(off + k));
    const __m128i idx = _mm_add_epi32(_mm_cvtepu16_epi32(raw), vb);
    const __m256d vals = _mm256_loadu_pd(val + k);
    const __m256d vx = _mm256_i32gather_pd(x, idx, 8);
    acc = _mm256_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = hsum256(acc);
  for (; k < len; ++k) sum += val[k] * x[b + off[k]];
  return sum;
}

/// fp32 only: fat int32 columns, float values.
inline Scalar row_dot_slim_f(const Index* colidx, const float* v32, Index len,
                             const Scalar* x) {
  __m256d acc = _mm256_setzero_pd();
  Index k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(colidx + k));
    const __m256d vals = _mm256_cvtps_pd(_mm_loadu_ps(v32 + k));
    const __m256d vx = _mm256_i32gather_pd(x, idx, 8);
    acc = _mm256_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = hsum256(acc);
  for (; k < len; ++k) {
    const Scalar v = v32[k];
    sum += v * x[colidx[k]];
  }
  return sum;
}

// argus-kernel: csr_slim_spmv_avx2
// argus-param: a : view CsrSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr_slim
void csr_slim_spmv_avx2(const CsrSlimView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    const Index len = a.rowptr[i + 1] - begin;
    if (a.idx16 != 0) {
      const Index b = a.base[i];
      if (a.fp32 != 0) {
        y[i] = row_dot_slim_if(b, a.off16 + begin, a.val32 + begin, len, x);
      } else {
        y[i] = row_dot_slim_i(b, a.off16 + begin, a.val + begin, len, x);
      }
    } else {
      y[i] = row_dot_slim_f(a.colidx + begin, a.val32 + begin, len, x);
    }
  }
}

}  // namespace

void register_csr_slim_avx2() {
  KESTREL_REGISTER_KERNEL(kCsrSlimSpmv, kAvx2, csr_slim_spmv_avx2);
}

}  // namespace kestrel::mat::kernels
