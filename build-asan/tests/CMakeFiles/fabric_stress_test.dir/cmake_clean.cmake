file(REMOVE_RECURSE
  "CMakeFiles/fabric_stress_test.dir/fabric_stress_test.cpp.o"
  "CMakeFiles/fabric_stress_test.dir/fabric_stress_test.cpp.o.d"
  "fabric_stress_test"
  "fabric_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
