#pragma once
// Fundamental scalar/index types shared across Kestrel.
//
// The paper stores matrix values in 64-bit doubles and column indices in
// 32-bit integers (its largest test, a 16384x16384 grid with 2 dof, is noted
// as "close to the largest case that does not require 64-bit integers").
// We keep the same choice and isolate it behind typedefs; assembly paths
// check for overflow explicitly.

#include <cstdint>
#include <cstddef>

namespace kestrel {

using Scalar = double;
using Index = std::int32_t;   ///< row/column index within one rank
using GIndex = std::int64_t;  ///< global index across ranks / overflow checks

/// Cache line size on every Intel architecture the paper targets (bytes).
inline constexpr std::size_t kCacheLine = 64;

/// SIMD width in doubles for a 512-bit ZMM register; also the default SELL
/// slice height (paper section 5.1).
inline constexpr Index kZmmDoubles = 8;

}  // namespace kestrel
