// SELF-TEST FIXTURE — tail mask conjured from unrelated data. The mutated
// remainder builds its __mmask8 from a column index instead of from the
// row-length arithmetic (1 << rem) - 1, so nothing bounds which lanes it
// enables. Argus must reject the mask's provenance.
//
// expect-violation: mask-provenance :: no provable provenance

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_spmv_avx512
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void csr_spmv_avx512(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    const Index len = a.rowptr[i + 1] - begin;
    Scalar sum = 0.0;
    Index k = 0;
    for (; k + 8 <= len; k += 8) {
      const __m512d vals = _mm512_loadu_pd(a.val + begin + k);
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.colidx + begin + k));
      const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
      sum += _mm512_reduce_add_pd(_mm512_mul_pd(vals, vx));
    }
    const Index rem = len - k;
    if (rem > 2) {
      // BUG: the mask is derived from matrix data, not from `rem`.
      const __mmask8 mask = static_cast<__mmask8>(a.colidx[begin]);
      const __m512d vals = _mm512_maskz_loadu_pd(mask, a.val + begin + k);
      const __m256i idx = _mm256_maskz_loadu_epi32(mask, a.colidx + begin + k);
      const __m512d vx =
          _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
      sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
    } else {
      for (; k < len; ++k) sum += a.val[begin + k] * x[a.colidx[begin + k]];
    }
    y[i] = sum;
  }
}

}  // namespace

void register_mask_provenance_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx512, csr_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
