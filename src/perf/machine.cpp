#include "perf/machine.hpp"

#include <cstdio>
#include <cstring>

namespace kestrel::perf {

const char* memory_mode_name(MemoryMode mode) {
  switch (mode) {
    case MemoryMode::kFlatMcdram:
      return "flat:mcdram";
    case MemoryMode::kFlatDram:
      return "flat:dram";
    case MemoryMode::kCache:
      return "cache";
  }
  return "?";
}

double MachineProfile::peak_gflops() const {
  const int lanes = (max_tier == simd::IsaTier::kAvx512) ? 8 : 4;
  // 2 FMA pipes * 2 flops per FMA * lanes doubles
  return cores * freq_ghz * 2.0 * 2.0 * lanes;
}

MachineProfile knl7230() {
  MachineProfile p;
  p.name = "KNL 7230";
  p.cores = 64;
  p.freq_ghz = 1.3;  // drops ~0.2 under heavy AVX from 1.5 turbo
  p.max_tier = simd::IsaTier::kAvx512;
  p.l3_mb = 0.0;
  p.dram_peak_gbs = 90.0;    // ~78% of 115.2 GB/s theoretical
  p.hbm_peak_gbs = 490.0;    // Figure 4: flat-mode stream ~490 GB/s
  p.bw_saturation_procs = 58.0;  // Figure 4
  p.novec_bw_fraction_flat = 0.42;   // Figure 4 Flat:novec plateau
  p.novec_bw_fraction_cache = 0.93;  // Figure 4 Cache:novec
  p.core_cycle_scale = 1.0;
  return p;
}

MachineProfile haswell() {
  MachineProfile p;
  p.name = "Haswell E5-2699v3";
  p.cores = 18;
  p.freq_ghz = 2.3;
  p.max_tier = simd::IsaTier::kAvx2;
  p.l3_mb = 45.0;
  p.dram_peak_gbs = 58.0;  // ~85% of 68 GB/s
  p.bw_saturation_procs = 10.0;
  p.core_cycle_scale = 0.45;  // big OoO core vs KNL core
  return p;
}

MachineProfile broadwell() {
  MachineProfile p;
  p.name = "Broadwell E5-2699v4";
  p.cores = 22;
  p.freq_ghz = 2.2;
  p.max_tier = simd::IsaTier::kAvx2;
  p.l3_mb = 55.0;
  p.dram_peak_gbs = 65.0;  // ~85% of 76.8 GB/s
  p.bw_saturation_procs = 11.0;
  p.core_cycle_scale = 0.44;
  return p;
}

MachineProfile skylake() {
  MachineProfile p;
  p.name = "Skylake 8180M";
  p.cores = 28;
  p.freq_ghz = 2.3;  // AVX-512 sustained clock below the 2.5 base
  p.max_tier = simd::IsaTier::kAvx512;
  p.l3_mb = 38.5;
  p.dram_peak_gbs = 101.0;  // ~85% of 119.2 GB/s (6 channels)
  p.bw_saturation_procs = 13.0;
  p.core_cycle_scale = 0.38;
  return p;
}

std::vector<MachineProfile> table1_machines() {
  return {haswell(), broadwell(), skylake(), knl7230()};
}

std::string host_cpu_model() {
  FILE* f = std::fopen("/proc/cpuinfo", "re");
  if (f == nullptr) return "";
  std::string model;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "model name", 10) != 0) continue;
    const char* colon = std::strchr(line, ':');
    if (colon == nullptr) continue;
    const char* p = colon + 1;
    while (*p == ' ' || *p == '\t') ++p;
    model = p;
    while (!model.empty() && (model.back() == '\n' || model.back() == ' ')) {
      model.pop_back();
    }
    break;
  }
  std::fclose(f);
  return model;
}

}  // namespace kestrel::perf
