// The central correctness sweep: every format x every ISA tier the CPU
// supports x a family of adversarial sparsity patterns, all checked against
// a dense reference product. This is what certifies that the AVX-512
// Algorithm 1/2 kernels (and their AVX/AVX2 ports) compute exactly the
// same SpMV as the scalar baseline.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "mat/bcsr.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "simd/isa.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

using testing::dense_spmv;
using testing::random_x;

struct Pattern {
  std::string name;
  std::function<Csr()> make;
};

std::vector<Pattern> patterns() {
  return {
      {"banded5", [] { return testing::banded(97, {-3, -1, 1, 3}); }},
      {"banded_wide", [] { return testing::banded(64, {-8, -4, 4, 8}); }},
      {"uniform4", [] { return testing::uniform_random(80, 80, 4); }},
      {"uniform_rect", [] { return testing::uniform_random(50, 90, 6); }},
      {"power_law", [] { return testing::power_law(100); }},
      {"empty_rows", [] { return testing::with_empty_rows(60); }},
      {"dense_row", [] { return testing::with_dense_row(40); }},
      {"tiny", [] { return testing::banded(3, {-1, 1}); }},
      {"single_row",
       [] {
         Coo coo(1, 13);
         for (Index j = 0; j < 13; j += 2) coo.add(0, j, j + 1.0);
         return coo.to_csr();
       }},
      {"row_len_sweep",
       [] {
         // rows of every length 0..16: exercises all remainder paths of
         // Algorithm 1 (len < 2, masked 3..7, full multiples of 8, mixed)
         Coo coo(17, 17);
         for (Index i = 0; i < 17; ++i) {
           for (Index j = 0; j < i; ++j) coo.add(i, j, 0.5 + i + j);
         }
         return coo.to_csr();
       }},
  };
}

std::vector<simd::IsaTier> supported_tiers() {
  std::vector<simd::IsaTier> tiers;
  for (int t = 0; t <= static_cast<int>(simd::detect_best_tier()); ++t) {
    tiers.push_back(static_cast<simd::IsaTier>(t));
  }
  return tiers;
}

void expect_matches_reference(const Matrix& m, const Csr& csr,
                              const std::string& context) {
  const auto x = random_x(csr.cols(), 123);
  const auto expect = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), -7.0);  // poison to catch unwritten rows
  m.spmv(xv, yv);
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11)
        << context << " row " << i;
  }
}

class SpmvSweep
    : public ::testing::TestWithParam<std::tuple<int, simd::IsaTier>> {};

TEST_P(SpmvSweep, CsrMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  csr.set_tier(tier);
  expect_matches_reference(csr, csr, "csr");
}

TEST_P(SpmvSweep, SellC8MatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Sell sell(csr);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c8");
}

TEST_P(SpmvSweep, SellC16MatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.slice_height = 16;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c16");
}

TEST_P(SpmvSweep, SellC4MatchesDense) {
  // c = 4 cannot use the AVX-512 kernel; exercises the downgrade path.
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.slice_height = 4;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c4");
}

TEST_P(SpmvSweep, SellSigmaSortedMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.sigma = 24;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-sigma");
}

TEST_P(SpmvSweep, SellBitmaskMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.build_bitmask = true;
  Sell sell(csr, opts);
  sell.set_tier(tier);

  const auto x = random_x(csr.cols(), 123);
  const auto expect = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), -7.0);
  sell.spmv_bitmask(xv.data(), yv.data());
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST_P(SpmvSweep, CsrPermMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  CsrPerm perm{Csr(csr)};
  perm.set_tier(tier);
  expect_matches_reference(perm, csr, "csrperm");
}

TEST_P(SpmvSweep, SellAddAccumulates) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Sell sell(csr);
  sell.set_tier(tier);
  const auto x = random_x(csr.cols(), 5);
  const auto ax = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), 1.5);
  sell.spmv_add(xv.data(), yv.data());
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], 1.5 + ax[static_cast<std::size_t>(i)], 1e-11);
  }
}

std::vector<std::tuple<int, simd::IsaTier>> sweep_params() {
  std::vector<std::tuple<int, simd::IsaTier>> params;
  const int npat = static_cast<int>(patterns().size());
  for (int p = 0; p < npat; ++p) {
    for (simd::IsaTier t : supported_tiers()) params.emplace_back(p, t);
  }
  return params;
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, simd::IsaTier>>& info) {
  const auto [p, t] = info.param;
  return patterns()[static_cast<std::size_t>(p)].name + "_" +
         simd::tier_name(t);
}

INSTANTIATE_TEST_SUITE_P(AllPatternsAllTiers, SpmvSweep,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

TEST(SpmvBcsr, MatchesDenseOnBlockMatrices) {
  // Build a block-structured matrix (2x2 blocks) and compare BCSR SpMV.
  for (Index nb : {3, 8, 17}) {
    Coo coo(nb * 2, nb * 2);
    Rng rng(21);
    for (Index ib = 0; ib < nb; ++ib) {
      for (Index jb : {ib, (ib + 1) % nb}) {
        for (Index r = 0; r < 2; ++r) {
          for (Index c = 0; c < 2; ++c) {
            coo.add(ib * 2 + r, jb * 2 + c, rng.uniform(-1.0, 1.0));
          }
        }
      }
    }
    const Csr csr = coo.to_csr();
    const Bcsr bcsr(csr, 2);
    EXPECT_EQ(bcsr.block_size(), 2);
    expect_matches_reference(bcsr, csr, "bcsr2");
  }
}

TEST(SpmvBcsr, GeneralBlockSizes) {
  for (Index bs : {1, 3, 4}) {
    const Index n = bs * 6;
    Coo coo(n, n);
    Rng rng(31);
    for (Index i = 0; i < n; ++i) {
      coo.add(i, i, 3.0);
      coo.add(i, (i + bs) % n, rng.uniform(-1.0, 1.0));
    }
    const Csr csr = coo.to_csr();
    const Bcsr bcsr(csr, bs);
    expect_matches_reference(bcsr, csr, "bcsr-general");
  }
}

}  // namespace
}  // namespace kestrel::mat
