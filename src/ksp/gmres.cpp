// Restarted GMRES with left preconditioning, modified Gram–Schmidt
// orthogonalization and Givens-rotation least squares — the workhorse
// solver in the paper's experiments (-ksp_type gmres is PETSc's default).

#include <cmath>
#include <vector>

#include "base/error.hpp"
#include "ksp/ksp.hpp"

namespace kestrel::ksp {

SolveResult Gmres::solve_once(LinearContext& ctx, const Vector& b,
                              Vector& x) const {
  const Index n = ctx.local_size();
  KESTREL_CHECK(b.size() == n, "gmres: rhs size mismatch");
  KESTREL_CHECK(x.size() == n, "gmres: solution size mismatch");
  const int m = settings_.gmres_restart;
  KESTREL_CHECK(m >= 1, "gmres: restart must be >= 1");
  SolveResult result;

  Vector r(n), w(n), t(n);
  std::vector<Vector> basis(static_cast<std::size_t>(m) + 1);
  // Hessenberg in column-major packed form h[j][i], plus Givens terms.
  std::vector<std::vector<Scalar>> h(
      static_cast<std::size_t>(m),
      std::vector<Scalar>(static_cast<std::size_t>(m) + 1, 0.0));
  std::vector<Scalar> cs(static_cast<std::size_t>(m), 0.0);
  std::vector<Scalar> sn(static_cast<std::size_t>(m), 0.0);
  std::vector<Scalar> g(static_cast<std::size_t>(m) + 1, 0.0);

  // Preconditioned initial residual: r = M^{-1}(b - A x).
  ctx.apply_operator(x, t);
  t.aypx(-1.0, b);
  ctx.apply_pc(t, r);
  const Scalar rnorm0 = ctx.norm2(r);
  if (check(rnorm0, rnorm0, 0, &result)) return result;

  int total_it = 0;
  while (true) {
    // Arnoldi from the current residual.
    ctx.apply_operator(x, t);
    t.aypx(-1.0, b);
    ctx.apply_pc(t, r);
    Scalar beta = ctx.norm2(r);
    if (beta == 0.0) {
      result.converged = true;
      result.reason = Reason::kConvergedAtol;
      result.iterations = total_it;
      result.residual_norm = 0.0;
      return result;
    }
    basis[0].copy_from(r);
    basis[0].scale(1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int k = 0;  // number of completed Arnoldi steps this cycle
    for (int j = 0; j < m; ++j) {
      ++total_it;
      // w = M^{-1} A v_j
      ctx.apply_operator(basis[static_cast<std::size_t>(j)], t);
      ctx.apply_pc(t, w);
      // modified Gram–Schmidt
      for (int i = 0; i <= j; ++i) {
        const Scalar hij = ctx.dot(w, basis[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = hij;
        w.axpy(-hij, basis[static_cast<std::size_t>(i)]);
      }
      const Scalar hlast = ctx.norm2(w);
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] =
          hlast;

      // apply previous Givens rotations to the new column
      auto& col = h[static_cast<std::size_t>(j)];
      for (int i = 0; i < j; ++i) {
        const Scalar tmp = cs[static_cast<std::size_t>(i)] *
                               col[static_cast<std::size_t>(i)] +
                           sn[static_cast<std::size_t>(i)] *
                               col[static_cast<std::size_t>(i) + 1];
        col[static_cast<std::size_t>(i) + 1] =
            -sn[static_cast<std::size_t>(i)] *
                col[static_cast<std::size_t>(i)] +
            cs[static_cast<std::size_t>(i)] *
                col[static_cast<std::size_t>(i) + 1];
        col[static_cast<std::size_t>(i)] = tmp;
      }
      // new rotation to annihilate the subdiagonal
      const Scalar denom = std::hypot(col[static_cast<std::size_t>(j)],
                                      col[static_cast<std::size_t>(j) + 1]);
      if (!std::isfinite(denom)) {
        // A NaN/Inf Hessenberg entry (poisoned operator or dot product)
        // would silently corrupt every later rotation; surface it now.
        result.converged = false;
        result.reason = Reason::kDivergedNan;
        result.iterations = total_it;
        result.residual_norm = denom;
        return result;
      }
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] =
            col[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] =
            col[static_cast<std::size_t>(j) + 1] / denom;
      }
      col[static_cast<std::size_t>(j)] = denom;
      col[static_cast<std::size_t>(j) + 1] = 0.0;
      g[static_cast<std::size_t>(j) + 1] =
          -sn[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];
      g[static_cast<std::size_t>(j)] =
          cs[static_cast<std::size_t>(j)] * g[static_cast<std::size_t>(j)];

      k = j + 1;
      const Scalar rnorm = std::abs(g[static_cast<std::size_t>(j) + 1]);
      const bool done = check(rnorm, rnorm0, total_it, &result);
      if (!done && hlast != 0.0 && j + 1 <= m) {
        basis[static_cast<std::size_t>(j) + 1].copy_from(w);
        basis[static_cast<std::size_t>(j) + 1].scale(1.0 / hlast);
      }
      if (done || hlast == 0.0) {
        // solve the least squares and update x, then return or restart
        break;
      }
    }

    // back substitution: y = H^{-1} g (upper triangular k x k)
    std::vector<Scalar> y(static_cast<std::size_t>(k), 0.0);
    for (int i = k - 1; i >= 0; --i) {
      Scalar sum = g[static_cast<std::size_t>(i)];
      for (int j2 = i + 1; j2 < k; ++j2) {
        sum -= h[static_cast<std::size_t>(j2)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(j2)];
      }
      const Scalar hii =
          h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
      if (hii == 0.0) {
        result.converged = false;
        result.reason = Reason::kDivergedBreakdown;
        result.iterations = total_it;
        return result;
      }
      y[static_cast<std::size_t>(i)] = sum / hii;
    }
    // fused multi-vector update (VecMAXPY): one pass over x
    std::vector<const Vector*> ptrs(static_cast<std::size_t>(k));
    for (int i = 0; i < k; ++i) {
      ptrs[static_cast<std::size_t>(i)] = &basis[static_cast<std::size_t>(i)];
    }
    x.maxpy(static_cast<std::size_t>(k), y.data(), ptrs.data());

    if (result.converged || result.reason == Reason::kDivergedNan ||
        result.reason == Reason::kDeadlineExceeded ||
        (result.reason == Reason::kDivergedMaxIts &&
         total_it >= settings_.max_iterations)) {
      return result;
    }
  }
}

}  // namespace kestrel::ksp
