file(REMOVE_RECURSE
  "libkestrel.a"
)
