# Empty compiler generated dependencies file for ksp_test.
# This may be replaced when dependencies are built.
