// Figure 9 — "Roofline analysis of the SpMV kernel on KNL": bandwidth
// ceilings, arithmetic intensity of the SpMV variants, and each variant's
// position relative to the MCDRAM roofline.
//
// Modeled section uses the ceilings printed in the paper's figure (LBNL
// Empirical Roofline Tool on Theta). Measured section builds this host's
// own roofline from a register-resident FMA peak and measured STREAM.

#include <cstdio>

#include "bench_common.hpp"
#include "mat/sell.hpp"
#include "perf/roofline.hpp"
#include "perf/stream.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  using namespace kestrel::perf;

  bench::parse_args(argc, argv);
  bench::header("Figure 9 (modeled): roofline on KNL (Theta ceilings)");
  const RooflineCeilings c = knl_ceilings_fig9();
  std::printf("ceilings: peak %.1f Gflop/s | L1 %.1f GB/s | L2 %.1f GB/s | "
              "MCDRAM %.1f GB/s\n\n",
              c.peak_gflops, c.l1_gbs, c.l2_gbs, c.mem_gbs);
  std::printf("%-20s %8s %10s %14s %12s\n", "kernel", "AI", "Gflop/s",
              "MCDRAM limit", "% of limit");
  for (const RooflinePoint& p : modeled_roofline_points()) {
    const double limit = roofline_limit(c, p.ai);
    std::printf("%-20s %8.3f %10.2f %14.2f %11.1f%%\n", p.label.c_str(),
                p.ai, p.gflops, limit, 100.0 * p.gflops / limit);
  }
  std::printf(
      "\nExpected shape (paper): AI ~= 0.132 for CSR variants (slightly\n"
      "higher for SELL, whose per-row metadata is smaller); SELL-AVX512\n"
      "sits close to the MCDRAM roofline, the baseline far below it.\n");

  bench::header("Figure 9 (measured): this host's roofline");
  const double peak =
      measured_peak_gflops(bench::smoke_mode() ? 5 : 200);
  const StreamResult stream = bench::smoke_mode() ? run_stream(1 << 16, 1)
                                                  : run_stream(1 << 23, 3);
  std::printf("measured peak (FMA): %8.2f Gflop/s\n", peak);
  std::printf("measured triad BW:   %8.2f GB/s\n\n", stream.triad_gbs);

  mat::Csr csr = bench::gray_scott_matrix(bench::scaled(384));
  const mat::Sell sell(csr);
  const double ai_csr =
      2.0 * csr.nnz() / static_cast<double>(csr.spmv_traffic_bytes());
  const double ai_sell =
      2.0 * sell.nnz() / static_cast<double>(sell.spmv_traffic_bytes());
  const double t_csr = bench::time_spmv(csr);
  const double t_sell = bench::time_spmv(sell);
  std::printf("%-16s %8s %10s %16s\n", "kernel", "AI", "Gflop/s",
              "roofline limit");
  std::printf("%-16s %8.3f %10.2f %16.2f\n", "CSR (best ISA)", ai_csr,
              bench::gflops(csr, t_csr),
              std::min(peak, stream.triad_gbs * ai_csr));
  std::printf("%-16s %8.3f %10.2f %16.2f\n", "SELL (best ISA)", ai_sell,
              bench::gflops(sell, t_sell),
              std::min(peak, stream.triad_gbs * ai_sell));
  return 0;
}
