// Advection-diffusion assembly and solve tests, plus the SELL-offdiag
// ParMatrix option (PETSc MPISELL analogue) and the umbrella header.

#include <gtest/gtest.h>

#include "kestrel.hpp"  // umbrella header must compile standalone
#include "app/advection_diffusion.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

TEST(AdvectionDiffusion, PureDiffusionMatchesLaplacian) {
  app::AdvectionDiffusionParams params;
  params.eps = 1.0;
  params.bx = 0.0;
  params.by = 0.0;
  const mat::Csr ad = app::advection_diffusion(8, params);
  const mat::Csr lap = app::laplacian_dirichlet(8, 8);
  ASSERT_EQ(ad.nnz(), lap.nnz());
  for (Index i = 0; i < ad.rows(); ++i) {
    for (Index j : ad.row_cols(i)) {
      EXPECT_NEAR(ad.at(i, j), lap.at(i, j), 1e-12);
    }
  }
}

TEST(AdvectionDiffusion, UpwindingFollowsVelocitySign) {
  app::AdvectionDiffusionParams params;
  params.eps = 1e-8;  // advection dominated so signs are visible
  params.bx = 1.0;
  params.by = 0.0;
  const mat::Csr a = app::advection_diffusion(5, params);
  // interior row: positive bx upwinds west (row-1 coefficient large
  // negative), east coefficient ~0
  const Index row = 2 * 5 + 2;
  EXPECT_LT(a.at(row, row - 1), -1.0);
  EXPECT_NEAR(a.at(row, row + 1), 0.0, 1e-6);
  EXPECT_GT(a.at(row, row), 1.0);
}

TEST(AdvectionDiffusion, RowSumsNonNegative) {
  // M-matrix structure: diagonal dominance (strict at boundaries)
  const mat::Csr a = app::advection_diffusion(10);
  for (Index i = 0; i < a.rows(); ++i) {
    Scalar sum = 0.0;
    for (Scalar v : a.row_vals(i)) sum += v;
    EXPECT_GE(sum, -1e-10);
  }
}

TEST(AdvectionDiffusion, GmresIluSolvesAdvectionDominated) {
  app::AdvectionDiffusionParams params;
  params.eps = 0.01;
  const mat::Csr a = app::advection_diffusion(24, params);
  const Vector b = app::advection_diffusion_rhs(24);
  Vector u(a.rows());
  const pc::Ilu0 ilu(a);
  ksp::Settings settings;
  settings.rtol = 1e-10;
  settings.max_iterations = 500;
  const ksp::Gmres gmres(settings);
  ksp::SeqContext ctx(a, &ilu);
  const auto res = gmres.solve(ctx, b, u);
  ASSERT_TRUE(res.converged);
  // the solution of an M-matrix system with positive rhs is positive
  for (Index i = 0; i < u.size(); ++i) EXPECT_GT(u[i], 0.0);
}

TEST(AdvectionDiffusion, SellAndCsrAgree) {
  const mat::Csr csr = app::advection_diffusion(16);
  const mat::Sell sell(csr);
  const auto x = testing::random_x(csr.cols(), 77);
  Vector xv(csr.cols()), y1, y2;
  for (Index i = 0; i < xv.size(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  csr.spmv(xv, y1);
  sell.spmv(xv, y2);
  for (Index i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(ParMatrixSellOffdiag, MatchesCompressedCsrOffdiag) {
  const mat::Csr global = testing::banded(60, {-9, -1, 1, 9}, 13);
  const auto x = testing::random_x(60, 3);
  Vector xg(60);
  for (Index i = 0; i < 60; ++i) xg[i] = x[static_cast<std::size_t>(i)];
  Vector y_seq;
  global.spmv(xg, y_seq);

  for (int nranks : {2, 4}) {
    auto layout =
        std::make_shared<par::Layout>(par::Layout::even(60, nranks));
    par::Fabric::run(nranks, [&](par::Comm& comm) {
      par::ParMatrixOptions opts;
      opts.diag_format = par::DiagFormat::kSell;
      opts.offdiag_format = par::OffdiagFormat::kSell;
      const par::ParMatrix a =
          par::ParMatrix::from_global(global, layout, comm, opts);
      par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
      xp.set_from_global(xg);
      a.spmv(xp, yp, comm);
      const Vector y_par = yp.gather_all(comm);
      for (Index i = 0; i < 60; ++i) {
        EXPECT_NEAR(y_par[i], y_seq[i], 1e-11) << "row " << i;
      }
    });
  }
}

TEST(ParMatrixSellOffdiag, WorksWithNoGhosts) {
  // block-diagonal layout: SELL offdiag with zero columns must be a no-op
  mat::Coo coo(12, 12);
  for (Index i = 0; i < 12; ++i) coo.add(i, (i / 6) * 6 + (i + 1) % 6, 1.0);
  const mat::Csr global = coo.to_csr();
  auto layout = std::make_shared<par::Layout>(par::Layout::even(12, 2));
  par::Fabric::run(2, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.offdiag_format = par::OffdiagFormat::kSell;
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, opts);
    par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.local().set(1.0);
    EXPECT_NO_THROW(a.spmv(xp, yp, comm));
  });
}

}  // namespace
}  // namespace kestrel
