// Round-trip and adversarial-input fuzzing for the Kestrel Scope JSON
// layer (prof/json). The parser validates every metrics/trace artifact the
// profiler emits, so it must (a) reject malformed input with kestrel::Error
// — never crash, hang, or silently mis-parse — and (b) reproduce exactly
// what escape() encoded. Randomized cases use a seeded in-test LCG so every
// run replays the identical corpus.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "prof/json.hpp"

namespace kestrel {
namespace {

using prof::json::Value;

// ---- deterministic generator ---------------------------------------------

/// Minimal LCG (Numerical Recipes constants): deterministic across
/// platforms, unlike std::rand or distribution-templated <random> output.
class Lcg {
 public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  std::uint32_t next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state_ >> 33);
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }

 private:
  std::uint64_t state_;
};

// ---- adversarial escapes --------------------------------------------------

TEST(ProfJsonFuzz, BadUnicodeEscapesThrow) {
  // Each hex digit must actually be hex; short/garbage payloads are errors.
  const char* bad[] = {
      "\"\\u\"",      "\"\\u1\"",    "\"\\u12\"",   "\"\\u123\"",
      "\"\\u12x4\"",  "\"\\uzzzz\"", "\"\\u 123\"", "\"\\u12\\\"",
  };
  for (const char* doc : bad) {
    EXPECT_THROW(prof::json::parse(doc), Error) << "doc: " << doc;
  }
}

TEST(ProfJsonFuzz, UnknownEscapesThrow) {
  EXPECT_THROW(prof::json::parse("\"\\q\""), Error);
  EXPECT_THROW(prof::json::parse("\"\\x41\""), Error);
  EXPECT_THROW(prof::json::parse("\"\\\x01\""), Error);
}

TEST(ProfJsonFuzz, NonAsciiCodePointsDecodeAsPlaceholder) {
  // The parser is documented ASCII-only: higher code points — including
  // lone UTF-16 surrogates, which full decoders must pair — become '?'.
  EXPECT_EQ(prof::json::parse("\"\\u0041\"").string, "A");
  EXPECT_EQ(prof::json::parse("\"\\u00e9\"").string, "?");
  EXPECT_EQ(prof::json::parse("\"\\ud800\"").string, "?");
  EXPECT_EQ(prof::json::parse("\"\\udfff\"").string, "?");
  EXPECT_EQ(prof::json::parse("\"\\u0000\"").string, std::string(1, '\0'));
}

TEST(ProfJsonFuzz, EscapeOutputRoundTripsArbitraryBytes) {
  Lcg rng(0x5eedu);
  for (int iter = 0; iter < 200; ++iter) {
    std::string s;
    const std::uint32_t len = rng.below(64);
    for (std::uint32_t i = 0; i < len; ++i) {
      s += static_cast<char>(rng.below(256));  // all bytes incl. NUL, quotes
    }
    const std::string doc = "\"" + prof::json::escape(s) + "\"";
    Value v;
    ASSERT_NO_THROW(v = prof::json::parse(doc)) << "doc: " << doc;
    ASSERT_TRUE(v.is_string());
    EXPECT_EQ(v.string, s) << "doc: " << doc;
  }
}

// ---- nesting --------------------------------------------------------------

TEST(ProfJsonFuzz, PathologicalNestingThrowsInsteadOfOverflowingStack) {
  // 10k unclosed '[' — without the depth cap this recurses 10k frames deep
  // and segfaults long before hitting the unexpected-end check.
  const std::string bombs[] = {
      std::string(10000, '['),
      std::string(10000, '[') + std::string(10000, ']'),
      [] {
        std::string s;
        for (int i = 0; i < 10000; ++i) s += "{\"k\":";
        return s;
      }(),
  };
  for (const std::string& doc : bombs) {
    EXPECT_THROW(prof::json::parse(doc), Error);
  }
}

TEST(ProfJsonFuzz, NestingUpToTheCapParses) {
  // The cap is 128 levels (prof/json.cpp kMaxDepth); Kestrel's own
  // documents nest < 10, so 128 parses and 129 is the first failure.
  const std::string ok =
      std::string(128, '[') + std::string(128, ']');
  EXPECT_NO_THROW(prof::json::parse(ok));
  const std::string over =
      std::string(129, '[') + std::string(129, ']');
  EXPECT_THROW(prof::json::parse(over), Error);
}

// ---- truncation ------------------------------------------------------------

TEST(ProfJsonFuzz, EveryProperPrefixOfAnObjectDocThrows) {
  // An object-rooted document is only complete at its final '}': every
  // proper prefix must be rejected (no partial-success parse).
  const std::string docs[] = {
      "{\"a\":[1,2,-3.5e2],\"b\":\"x\\n\\u0041\",\"c\":{\"d\":null}}",
      "{\"schema\":\"kestrel-scope-metrics-v2\",\"events\":[{\"t\":true}]}",
      "{\"deep\":[[[{\"k\":[false,1e-3]}]]]}",
  };
  for (const std::string& doc : docs) {
    ASSERT_NO_THROW(prof::json::parse(doc));
    for (std::size_t n = 0; n < doc.size(); ++n) {
      EXPECT_THROW(prof::json::parse(doc.substr(0, n)), Error)
          << "prefix of length " << n << " of: " << doc;
    }
  }
}

TEST(ProfJsonFuzz, TrailingGarbageThrows) {
  EXPECT_THROW(prof::json::parse("{} {}"), Error);
  EXPECT_THROW(prof::json::parse("1 2"), Error);
  EXPECT_THROW(prof::json::parse("[1]]"), Error);
  EXPECT_THROW(prof::json::parse("\"a\"b"), Error);
}

// ---- random structured documents ------------------------------------------

/// Serializes a Value the way prof/report.cpp writes documents.
std::string serialize(const Value& v) {
  switch (v.kind) {
    case Value::Kind::Null:
      return "null";
    case Value::Kind::Bool:
      return v.boolean ? "true" : "false";
    case Value::Kind::Number: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.number);
      return buf;
    }
    case Value::Kind::String:
      return "\"" + prof::json::escape(v.string) + "\"";
    case Value::Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        if (i) out += ",";
        out += serialize(v.array[i]);
      }
      return out + "]";
    }
    case Value::Kind::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& kv : v.object) {
        if (!first) out += ",";
        first = false;
        out += "\"" + prof::json::escape(kv.first) + "\":" +
               serialize(kv.second);
      }
      return out + "}";
    }
  }
  return "null";
}

bool deep_equal(const Value& a, const Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Value::Kind::Null:
      return true;
    case Value::Kind::Bool:
      return a.boolean == b.boolean;
    case Value::Kind::Number:
      return a.number == b.number;
    case Value::Kind::String:
      return a.string == b.string;
    case Value::Kind::Array: {
      if (a.array.size() != b.array.size()) return false;
      for (std::size_t i = 0; i < a.array.size(); ++i) {
        if (!deep_equal(a.array[i], b.array[i])) return false;
      }
      return true;
    }
    case Value::Kind::Object: {
      if (a.object.size() != b.object.size()) return false;
      for (const auto& kv : a.object) {
        const Value* other = b.find(kv.first);
        if (other == nullptr || !deep_equal(kv.second, *other)) return false;
      }
      return true;
    }
  }
  return false;
}

Value random_value(Lcg& rng, int depth) {
  Value v;
  // Leaves only at the bottom; containers get rarer as depth grows.
  const std::uint32_t pick = rng.below(depth >= 5 ? 4u : 6u);
  switch (pick) {
    case 0:
      break;  // null
    case 1:
      v.kind = Value::Kind::Bool;
      v.boolean = rng.below(2) != 0;
      break;
    case 2:
      v.kind = Value::Kind::Number;
      // Halves round-trip exactly through %.17g / strtod.
      v.number = static_cast<double>(static_cast<std::int32_t>(rng.next())) /
                 2.0;
      break;
    case 3: {
      v.kind = Value::Kind::String;
      const std::uint32_t len = rng.below(12);
      for (std::uint32_t i = 0; i < len; ++i) {
        v.string += static_cast<char>(rng.below(256));
      }
      break;
    }
    case 4: {
      v.kind = Value::Kind::Array;
      const std::uint32_t len = rng.below(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        v.array.push_back(random_value(rng, depth + 1));
      }
      break;
    }
    default: {
      v.kind = Value::Kind::Object;
      const std::uint32_t len = rng.below(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        v.object.emplace("k" + std::to_string(i) +
                             std::string(1, static_cast<char>(rng.below(256))),
                         random_value(rng, depth + 1));
      }
      break;
    }
  }
  return v;
}

TEST(ProfJsonFuzz, RandomDocumentsRoundTripExactly) {
  Lcg rng(0xfeedfaceu);
  for (int iter = 0; iter < 300; ++iter) {
    const Value original = random_value(rng, 0);
    const std::string doc = serialize(original);
    Value reparsed;
    ASSERT_NO_THROW(reparsed = prof::json::parse(doc)) << "doc: " << doc;
    EXPECT_TRUE(deep_equal(original, reparsed)) << "doc: " << doc;
  }
}

// ---- raw byte fuzz ---------------------------------------------------------

TEST(ProfJsonFuzz, RandomBytesEitherParseOrThrow) {
  // Pure garbage must never crash, hang, or throw anything other than
  // kestrel::Error. (ASan/UBSan jobs run this same binary, so out-of-bounds
  // reads in the parser would also surface here.)
  Lcg rng(0xdeadbeefu);
  int parsed = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string doc;
    const std::uint32_t len = rng.below(48);
    for (std::uint32_t i = 0; i < len; ++i) {
      // Bias toward structural bytes so some inputs get deep into the
      // parser instead of failing on the first character.
      static const char structural[] = "{}[]\",:\\u0123e.-+ tfn";
      doc += rng.below(3) != 0
                 ? structural[rng.below(sizeof(structural) - 1)]
                 : static_cast<char>(rng.below(256));
    }
    try {
      (void)prof::json::parse(doc);
      ++parsed;
    } catch (const Error&) {
      // expected for malformed input
    }
  }
  // Sanity that the corpus exercised both outcomes.
  EXPECT_GT(parsed, 0);
  EXPECT_LT(parsed, 2000);
}

}  // namespace
}  // namespace kestrel
