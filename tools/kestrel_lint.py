#!/usr/bin/env python3
"""kestrel_lint: kernel-TU contract checks for the Kestrel tree.

Part 3 of Kestrel Sentry. Run from ctest / CI / scripts/check.sh:

    python3 tools/kestrel_lint.py --repo .        # lint the tree
    python3 tools/kestrel_lint.py --self-test     # prove the rules fire

Rules enforced
--------------
kernel-table-scalar
    Every format that registers a vector (avx/avx2/avx512) cell in
    KESTREL_KERNEL_TABLE (src/mat/kernels/registration.hpp) must also
    register a scalar cell: the scalar kernel is the differential oracle
    every vector kernel is tested against (tests/spmv_kernels_test.cpp).

kernel-table-tu
    Every table cell (fmt, isa) has a translation unit
    src/mat/kernels/<fmt>_<isa>.cpp that defines register_<fmt>_<isa>()
    and registers its kernels via KESTREL_REGISTER_KERNEL with the IsaTier
    token matching <isa> — and nothing else. Conversely, every
    <fmt>_<isa>.cpp on disk must be a table cell, so no kernel TU can be
    silently dropped from dispatch.

kernel-isa-flags
    Each table cell's TU is listed in the matching
    KESTREL_KERNEL_SOURCES_<ISA> list in src/CMakeLists.txt, whose
    COMPILE_OPTIONS carry the -m flags that ISA requires (avx: -mavx;
    avx2: -mavx2 -mfma; avx512: -mavx512f -mfma). Scalar TUs must not
    appear in any ISA list: the scalar baseline is compiled with default
    target flags by design (paper section 4).

aligned-load-provenance
    Aligned load/store intrinsics (_mm*_load_pd, _mm*_store_pd, ... —
    anything that faults on a misaligned pointer) may only be used on a
    line annotated `// kestrel-aligned: <why>` (same line or the line
    above), where <why> states the alignment provenance (an AlignedBuffer
    from base/aligned.hpp, alignas storage, ...). Unaligned *u variants
    need no annotation.

banned-construct
    Kernel TUs (src/mat/kernels/) must not use raw `new`: kernels operate
    on caller-owned views and must not allocate. `std::thread` is banned
    everywhere in src/ outside src/par/ and src/svc/ — data-parallel
    threading is the fabric's job, while the Bastion service layer owns
    its long-lived request workers (they block on a condition variable,
    so running them on the Flock pool would starve kernel dispatch). The
    hardware-query std::thread::hardware_concurrency and the identity
    type std::thread::id — Kestrel Scope keys per-thread span stacks on
    it — are allowed: neither spawns a thread.

kernel-perf-reporting
    Every format in KESTREL_KERNEL_TABLE must report spmv flops and
    traffic bytes to Kestrel Scope: its format TU src/mat/<fmt>.cpp must
    invoke KESTREL_PROF_SPMV at the spmv entry point. Without it, the
    format's work is invisible to -log_view and the bytes-vs-model
    cross-check (tests/prof_test.cpp) cannot cover it. Utility kernel
    families that are not matrix formats (UTILITY_FORMATS, e.g. the
    gather-pack family) are exempt: they have no spmv entry point and
    their callers own the profiling.

abft-hook
    Every matrix format in KESTREL_KERNEL_TABLE must define its ABFT
    column-checksum hook: `abft_col_checksum` must appear in the format's
    own src/mat/<fmt>.cpp or src/mat/<fmt>.hpp. The Kestrel Aegis
    AbftMatrix wrapper (src/aegis/abft.cpp) builds c = A^T.1 through this
    hook from the format's *own* storage — a format that inherits another
    format's implementation would checksum the wrong value stream and
    either miss corruption or flag clean multiplies. Utility kernel
    families (UTILITY_FORMATS) are exempt: they are not matrix formats.

flock-pool-safety
    Every kernel family in KESTREL_KERNEL_TABLE must declare how the
    Kestrel Flock thread pool may partition its work: a
    `// flock-pool-safe: <granularity>` annotation with granularity in
    {row, slice, blockrow, panel, group8, element}. Matrix formats carry
    it in their own src/mat/<fmt>.cpp or .hpp (next to repartition());
    utility families (UTILITY_FORMATS) carry it in one of their kernel
    TUs. The granularity is the unit a partition boundary may NOT split
    — e.g. SELL slices (vector lanes span a slice) or csr_perm's
    width-8 vector chunks (group8: splitting one would move rows between
    the FMA path and the scalar remainder and change rounding). A new
    table entry without the declaration has never been audited for
    threaded execution and must not silently inherit pool dispatch.

kernel-op-scalar
    Every simd::Op registered from a kernel TU at a vector tier
    (kAvx/kAvx2/kAvx512) must also be registered at IsaTier::kScalar
    somewhere in src/mat/kernels/. kernel-table-scalar enforces this per
    *format*; this rule enforces it per *operation*, catching a new op
    (e.g. kGatherPack) added vector-only inside an existing format's TUs.
    The scalar registration is what guarantees dispatch never fails on a
    non-AVX host and gives the differential tests their oracle. The
    registration-table half of the contract (the TU itself must be a
    KESTREL_KERNEL_TABLE cell) is enforced by kernel-table-tu.

svc-structured-errors
    The Kestrel Bastion service layer (src/svc/) must not throw bare
    standard-library exceptions (`throw std::runtime_error(...)`, ...).
    Every decline the service makes is part of its API: admission control
    answers with RejectedError (queue depth + retry hint), budget declines
    with BudgetError (requested/in-use/limit bytes), contract violations
    with KESTREL_CHECK/KESTREL_FAIL. A bare std::* throw is a response a
    client cannot dispatch on — it collapses "shed, retry later" and
    "misconfigured, don't retry" into one opaque string.

prof-schema-version
    Profiler export paths must declare their schema version through the
    shared constants in src/prof/report.hpp (prof::kMetricsSchema /
    kMetricsSchemaV1). In src/, bench/ and examples/, (a) no code may
    hardcode a "kestrel-scope-metrics-..." string literal outside
    report.hpp, and (b) any line emitting a "schema" JSON key must
    reference kMetricsSchema on that line. Hardcoded copies are how a
    schema bump silently forks: one writer moves to -v2 while another
    keeps stamping -v1 over the new fields. Comments are exempt; tests
    are exempt (they pin exact strings on purpose).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from dataclasses import dataclass

KERNELS_DIR = os.path.join("src", "mat", "kernels")
REGISTRATION_HPP = os.path.join(KERNELS_DIR, "registration.hpp")
SRC_CMAKE = os.path.join("src", "CMakeLists.txt")

ISA_TIER_TOKEN = {
    "scalar": "kScalar",
    "avx": "kAvx",
    "avx2": "kAvx2",
    "avx512": "kAvx512",
}
ISA_REQUIRED_FLAGS = {
    "scalar": [],
    "avx": ["-mavx"],
    "avx2": ["-mavx2", "-mfma"],
    "avx512": ["-mavx512f", "-mfma"],
}

ALIGNED_INTRIN_RE = re.compile(
    r"_mm\d*_(?:mask_|maskz_)?(?:load|store)_(?:pd|ps|sd|ss|si\d+|epi\d+|epu\d+)\b"
)
ALIGNED_ANNOTATION = "kestrel-aligned:"
PROF_SPMV_MACRO = "KESTREL_PROF_SPMV"
ABFT_HOOK = "abft_col_checksum"
# Kernel families in KESTREL_KERNEL_TABLE that are not matrix formats: no
# src/mat/<fmt>.cpp, no spmv entry point, profiling owned by the caller.
UTILITY_FORMATS = {"gather"}


def home_format(fmt: str) -> str:
    """Format whose src/mat files own a kernel family's bookkeeping.

    Kestrel Slim registers `<fmt>_slim` table cells, but the slim kernels
    are dispatched from the parent format's spmv: csr.cpp reports the perf
    of `csr_slim`, carries its ABFT hook and its Flock granularity. There
    is deliberately no src/mat/csr_slim.cpp."""
    return fmt[:-len("_slim")] if fmt.endswith("_slim") else fmt
VECTOR_TIER_TOKENS = {"kAvx", "kAvx2", "kAvx512"}
TABLE_CELL_RE = re.compile(r"^\s*X\((\w+),\s*(\w+)\)", re.MULTILINE)
REGISTER_MACRO_RE = re.compile(r"KESTREL_REGISTER_KERNEL\(\s*(\w+)\s*,\s*(\w+)")
KERNEL_TU_RE = re.compile(r"^(\w+?)_(scalar|avx|avx2|avx512)\.cpp$")
# Kestrel Argus: every kernel TU must carry the machine-checked contract
# header that tools/argus/argus.py analyzes (see DESIGN.md §10).
ARGUS_CONTRACT_RE = re.compile(
    r"^\s*//\s*argus-contract:\s*format=\w+\s+isa=\w+\s*$", re.MULTILINE)
ARGUS_KERNEL_RE = re.compile(r"^\s*//\s*argus-kernel:\s*\w+", re.MULTILINE)


@dataclass
class Violation:
    rule: str
    path: str
    line: int  # 1-based; 0 when the finding is file- or tree-level
    message: str

    def __str__(self) -> str:
        loc = f"{self.path}:{self.line}" if self.line else self.path
        return f"{loc}: [{self.rule}] {self.message}"


def read_text(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def strip_comments_and_strings(text: str, keep_strings: bool = False) -> str:
    """Blanks out //, /* */ comments and (unless keep_strings) string
    literals, preserving line structure so reported line numbers stay
    valid. keep_strings=True keeps literal contents verbatim — used by
    rules that inspect what the code *emits* (prof-schema-version)."""

    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                state = "string"
                out.append('"' if keep_strings else " ")
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append("'" if keep_strings else " ")
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if ch == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append(text[i:i + 2] if keep_strings else "  ")
                i += 2
                continue
            if ch == quote:
                state = "code"
            if keep_strings:
                out.append(ch)
            else:
                out.append("\n" if ch == "\n" else " ")
        i += 1
    return "".join(out)


def parse_kernel_table(repo: str):
    """Returns ([(fmt, isa)], violations) from registration.hpp."""
    path = os.path.join(repo, REGISTRATION_HPP)
    if not os.path.isfile(path):
        return [], [Violation("kernel-table-tu", REGISTRATION_HPP, 0,
                              "registration header not found")]
    cells = [(m.group(1), m.group(2))
             for m in TABLE_CELL_RE.finditer(read_text(path))]
    if not cells:
        return [], [Violation("kernel-table-tu", REGISTRATION_HPP, 0,
                              "no X(format, isa) cells found in "
                              "KESTREL_KERNEL_TABLE")]
    return cells, []


def parse_cmake_kernel_lists(repo: str):
    """Returns ({ISA: [tu basename]}, {ISA: [flags]}) from src/CMakeLists.txt."""
    path = os.path.join(repo, SRC_CMAKE)
    sources: dict[str, list[str]] = {}
    flags: dict[str, list[str]] = {}
    if not os.path.isfile(path):
        return sources, flags
    text = read_text(path)
    for m in re.finditer(r"set\(KESTREL_KERNEL_SOURCES_(\w+)([^)]*)\)", text):
        isa = m.group(1).lower()
        sources[isa] = re.findall(r"mat/kernels/(\w+\.cpp)", m.group(2))
    for m in re.finditer(
            r"set_source_files_properties\(\$\{KESTREL_KERNEL_SOURCES_(\w+)\}"
            r".*?COMPILE_OPTIONS\s*\n?\s*\"([^\"]*)\"", text, re.DOTALL):
        isa = m.group(1).lower()
        flags[isa] = [f for f in re.split(r"[;\s]+", m.group(2)) if f]
    return sources, flags


def check_kernel_table(repo: str) -> list[Violation]:
    cells, violations = parse_kernel_table(repo)
    if not cells:
        return violations
    formats: dict[str, set[str]] = {}
    for fmt, isa in cells:
        if isa not in ISA_TIER_TOKEN:
            violations.append(Violation(
                "kernel-table-tu", REGISTRATION_HPP, 0,
                f"cell ({fmt}, {isa}): unknown ISA "
                f"(expected {'|'.join(ISA_TIER_TOKEN)})"))
            continue
        formats.setdefault(fmt, set()).add(isa)

    # Rule: every vector cell has a scalar counterpart.
    for fmt, isas in sorted(formats.items()):
        if "scalar" not in isas:
            violations.append(Violation(
                "kernel-table-scalar", REGISTRATION_HPP, 0,
                f"format '{fmt}' registers {sorted(isas)} but no scalar "
                f"cell — every vector kernel needs its scalar oracle"))

    # Rule: every cell has a conforming TU.
    for fmt, isa in cells:
        if isa not in ISA_TIER_TOKEN:
            continue
        tu_rel = os.path.join(KERNELS_DIR, f"{fmt}_{isa}.cpp")
        tu_path = os.path.join(repo, tu_rel)
        if not os.path.isfile(tu_path):
            violations.append(Violation(
                "kernel-table-tu", tu_rel, 0,
                f"table cell ({fmt}, {isa}) has no translation unit"))
            continue
        text = read_text(tu_path)
        entry = f"register_{fmt}_{isa}"
        if not re.search(rf"void\s+{entry}\s*\(", text):
            violations.append(Violation(
                "kernel-table-tu", tu_rel, 0,
                f"missing registration entry point {entry}()"))
        registered = REGISTER_MACRO_RE.findall(text)
        if not registered:
            violations.append(Violation(
                "kernel-table-tu", tu_rel, 0,
                "registers no kernels via KESTREL_REGISTER_KERNEL"))
        want_token = ISA_TIER_TOKEN[isa]
        for op, tier in registered:
            if tier != want_token:
                violations.append(Violation(
                    "kernel-table-tu", tu_rel, 0,
                    f"registers {op} with IsaTier::{tier}, but this TU's "
                    f"table cell declares ISA '{isa}' "
                    f"(IsaTier::{want_token})"))

    # Rule: every kernel TU on disk is a table cell.
    kernels_dir = os.path.join(repo, KERNELS_DIR)
    if os.path.isdir(kernels_dir):
        for name in sorted(os.listdir(kernels_dir)):
            m = KERNEL_TU_RE.match(name)
            if not m:
                continue
            fmt, isa = None, None
            # "csr_perm_avx512.cpp" must split as (csr_perm, avx512): take
            # the last _<isa> suffix.
            stem = name[:-len(".cpp")]
            for cand in ISA_TIER_TOKEN:
                if stem.endswith("_" + cand):
                    fmt, isa = stem[:-(len(cand) + 1)], cand
            if fmt is None or (fmt, isa) in cells:
                continue
            violations.append(Violation(
                "kernel-table-tu", os.path.join(KERNELS_DIR, name), 0,
                f"kernel TU exists on disk but ({fmt}, {isa}) is not a "
                f"KESTREL_KERNEL_TABLE cell — it would never be dispatched"))
    return violations


def check_isa_flags(repo: str) -> list[Violation]:
    cells, _ = parse_kernel_table(repo)
    if not cells or not os.path.isfile(os.path.join(repo, SRC_CMAKE)):
        return []
    sources, flags = parse_cmake_kernel_lists(repo)
    violations = []
    for fmt, isa in cells:
        if isa not in ISA_TIER_TOKEN:
            continue
        tu = f"{fmt}_{isa}.cpp"
        listed_in = [l for l, names in sources.items() if tu in names]
        if isa not in listed_in:
            violations.append(Violation(
                "kernel-isa-flags", SRC_CMAKE, 0,
                f"{tu} is not in KESTREL_KERNEL_SOURCES_{isa.upper()} — it "
                f"would build without its ISA flags"))
            continue
        if isa == "scalar":
            others = [l for l in listed_in if l != "scalar"]
            if others:
                violations.append(Violation(
                    "kernel-isa-flags", SRC_CMAKE, 0,
                    f"{tu} is a scalar TU but also appears in "
                    f"{[f'KESTREL_KERNEL_SOURCES_{o.upper()}' for o in others]}"
                    f" — the scalar baseline must not get -m flags"))
            continue
        have = flags.get(isa, [])
        missing = [f for f in ISA_REQUIRED_FLAGS[isa] if f not in have]
        if missing:
            violations.append(Violation(
                "kernel-isa-flags", SRC_CMAKE, 0,
                f"KESTREL_KERNEL_SOURCES_{isa.upper()} COMPILE_OPTIONS "
                f"{have} lack required {missing} for {tu}"))
    return violations


def iter_source_files(root: str, exts=(".cpp", ".hpp")):
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(exts):
                yield os.path.join(dirpath, name)


def check_aligned_loads(repo: str) -> list[Violation]:
    violations = []
    src = os.path.join(repo, "src")
    for path in iter_source_files(src):
        rel = os.path.relpath(path, repo)
        lines = read_text(path).splitlines()
        for lineno, line in enumerate(lines, start=1):
            m = ALIGNED_INTRIN_RE.search(line)
            if not m:
                continue
            prev = lines[lineno - 2] if lineno >= 2 else ""
            if ALIGNED_ANNOTATION in line or ALIGNED_ANNOTATION in prev:
                continue
            violations.append(Violation(
                "aligned-load-provenance", rel, lineno,
                f"{m.group(0)} requires an alignment-provenance annotation "
                f"('// {ALIGNED_ANNOTATION} <why>' on this or the previous "
                f"line), or use the unaligned *u variant"))
    return violations


def check_banned_constructs(repo: str) -> list[Violation]:
    violations = []
    src = os.path.join(repo, "src")
    kernels_prefix = KERNELS_DIR + os.sep
    # src/par/ is where threading lives; src/svc/ owns its long-lived
    # request workers (blocking them on the Flock pool would starve
    # kernel dispatch).
    thread_owner_prefixes = (os.path.join("src", "par") + os.sep,
                             os.path.join("src", "svc") + os.sep)
    for path in iter_source_files(src):
        rel = os.path.relpath(path, repo)
        code = strip_comments_and_strings(read_text(path))
        lines = code.splitlines()
        in_kernels = rel.startswith(kernels_prefix)
        in_par = rel.startswith(thread_owner_prefixes)
        for lineno, line in enumerate(lines, start=1):
            if in_kernels and re.search(r"\bnew\b", line):
                violations.append(Violation(
                    "banned-construct", rel, lineno,
                    "raw `new` in kernel code — kernels operate on "
                    "caller-owned views and must not allocate"))
            if not in_par and "std::thread" in line:
                if "hardware_concurrency" in line:
                    continue  # hardware query, spawns nothing
                if "std::thread::id" in line:
                    continue  # identity token, spawns nothing
                violations.append(Violation(
                    "banned-construct", rel, lineno,
                    "std::thread outside src/par/ — threading is the "
                    "fabric's job (kestrel::par)"))
    return violations


def check_kernel_perf_reporting(repo: str) -> list[Violation]:
    cells, _ = parse_kernel_table(repo)
    if not cells:
        return []
    violations = []
    homes = sorted({home_format(fmt) for fmt, isa in cells
                    if isa in ISA_TIER_TOKEN})
    for fmt in homes:
        if fmt in UTILITY_FORMATS:
            continue
        rel = os.path.join("src", "mat", f"{fmt}.cpp")
        path = os.path.join(repo, rel)
        if not os.path.isfile(path):
            violations.append(Violation(
                "kernel-perf-reporting", rel, 0,
                f"format '{fmt}' is a KESTREL_KERNEL_TABLE cell but has no "
                f"format TU src/mat/{fmt}.cpp to report spmv perf from"))
            continue
        if PROF_SPMV_MACRO not in read_text(path):
            violations.append(Violation(
                "kernel-perf-reporting", rel, 0,
                f"format '{fmt}' never calls {PROF_SPMV_MACRO} — its spmv "
                f"flops/bytes are invisible to -log_view and the "
                f"traffic-model cross-check"))
    return violations


def check_abft_hook(repo: str) -> list[Violation]:
    cells, _ = parse_kernel_table(repo)
    if not cells:
        return []
    violations = []
    for fmt in sorted({home_format(fmt) for fmt, isa in cells
                       if isa in ISA_TIER_TOKEN}):
        if fmt in UTILITY_FORMATS:
            continue
        candidates = [os.path.join("src", "mat", f"{fmt}.cpp"),
                      os.path.join("src", "mat", f"{fmt}.hpp")]
        present = [rel for rel in candidates
                   if os.path.isfile(os.path.join(repo, rel))]
        if not present:
            # kernel-perf-reporting already flags the missing format TU.
            continue
        if any(ABFT_HOOK in read_text(os.path.join(repo, rel))
               for rel in present):
            continue
        violations.append(Violation(
            "abft-hook", present[0], 0,
            f"format '{fmt}' never defines {ABFT_HOOK}() in its own "
            f"files — Kestrel Aegis cannot build the c = A^T.1 checksum "
            f"from this format's storage, so AbftMatrix('{fmt}') would "
            f"verify against the wrong value stream"))
    return violations


FLOCK_ANNOTATION_RE = re.compile(r"flock-pool-safe:\s*(\w+)")
FLOCK_GRANULARITIES = {"row", "slice", "blockrow", "panel", "group8",
                       "element"}


def check_flock_pool_safety(repo: str) -> list[Violation]:
    """Every kernel-table family must declare the partition granularity the
    Kestrel Flock pool may use (// flock-pool-safe: <granularity>). Matrix
    formats declare it in src/mat/<fmt>.{cpp,hpp}; utility families in one
    of their src/mat/kernels/<fmt>_*.cpp TUs."""
    cells, _ = parse_kernel_table(repo)
    if not cells:
        return []
    violations = []
    kernels_dir = os.path.join(repo, KERNELS_DIR)
    for fmt in sorted({home_format(fmt) for fmt, isa in cells
                       if isa in ISA_TIER_TOKEN}):
        if fmt in UTILITY_FORMATS:
            candidates = []
            if os.path.isdir(kernels_dir):
                for name in sorted(os.listdir(kernels_dir)):
                    m = KERNEL_TU_RE.match(name)
                    if m and m.group(1) == fmt:
                        candidates.append(os.path.join(KERNELS_DIR, name))
        else:
            candidates = [rel for rel in
                          (os.path.join("src", "mat", f"{fmt}.cpp"),
                           os.path.join("src", "mat", f"{fmt}.hpp"))
                          if os.path.isfile(os.path.join(repo, rel))]
        if not candidates:
            # kernel-perf-reporting / kernel-table-tu flag the missing TU.
            continue
        tokens = []
        for rel in candidates:
            tokens += FLOCK_ANNOTATION_RE.findall(
                read_text(os.path.join(repo, rel)))
        if not tokens:
            violations.append(Violation(
                "flock-pool-safety", candidates[0], 0,
                f"family '{fmt}' never declares '// flock-pool-safe: "
                f"<granularity>' in its own files — the Flock pool would "
                f"dispatch a kernel whose split-safety was never audited "
                f"(granularities: {', '.join(sorted(FLOCK_GRANULARITIES))})"))
            continue
        bad = sorted(set(tokens) - FLOCK_GRANULARITIES)
        if bad:
            violations.append(Violation(
                "flock-pool-safety", candidates[0], 0,
                f"family '{fmt}' declares unknown flock-pool-safe "
                f"granularity {bad} — use one of "
                f"{', '.join(sorted(FLOCK_GRANULARITIES))}"))
    return violations


def check_slim_kernel_contract(repo: str) -> list[Violation]:
    """Every Kestrel Slim kernel TU (src/mat/kernels/<fmt>_slim_<isa>.cpp)
    must carry the argus-contract header naming its own slim format — the
    Argus proof battery keys its span/traffic facts on it — and must have a
    scalar counterpart TU on disk, the oracle the differential sweep in
    tests/slim_test.cpp compares every vector tier against."""
    violations = []
    kernels_dir = os.path.join(repo, KERNELS_DIR)
    if not os.path.isdir(kernels_dir):
        return violations
    for name in sorted(os.listdir(kernels_dir)):
        m = KERNEL_TU_RE.match(name)
        if not m:
            continue
        stem = name[:-len(".cpp")]
        fmt, isa = None, None
        for cand in ISA_TIER_TOKEN:
            if stem.endswith("_" + cand):
                fmt, isa = stem[:-(len(cand) + 1)], cand
        if fmt is None or not fmt.endswith("_slim"):
            continue
        rel = os.path.join(KERNELS_DIR, name)
        header = re.compile(
            rf"^\s*//\s*argus-contract:\s*format={fmt}\s+isa={isa}\s*$",
            re.MULTILINE)
        if not header.search(read_text(os.path.join(repo, rel))):
            violations.append(Violation(
                "slim-kernel-contract", rel, 0,
                f"slim kernel TU declares no '// argus-contract: "
                f"format={fmt} isa={isa}' header — the Argus battery "
                f"cannot prove its u16 rebase / fp32 widen memory-safe"))
        scalar_rel = os.path.join(KERNELS_DIR, f"{fmt}_scalar.cpp")
        if not os.path.isfile(os.path.join(repo, scalar_rel)):
            violations.append(Violation(
                "slim-kernel-contract", rel, 0,
                f"slim kernel TU has no scalar counterpart {scalar_rel} — "
                f"the differential sweep has no oracle for '{fmt}'"))
    return violations


def check_kernel_op_scalar(repo: str) -> list[Violation]:
    kernels_dir = os.path.join(repo, KERNELS_DIR)
    if not os.path.isdir(kernels_dir):
        return []
    op_tiers: dict[str, set[str]] = {}
    op_where: dict[str, str] = {}
    for name in sorted(os.listdir(kernels_dir)):
        if not name.endswith(".cpp"):
            continue
        rel = os.path.join(KERNELS_DIR, name)
        text = read_text(os.path.join(kernels_dir, name))
        for op, tier in REGISTER_MACRO_RE.findall(text):
            op_tiers.setdefault(op, set()).add(tier)
            op_where.setdefault(op, rel)
    violations = []
    for op, tiers in sorted(op_tiers.items()):
        if tiers & VECTOR_TIER_TOKENS and "kScalar" not in tiers:
            violations.append(Violation(
                "kernel-op-scalar", op_where[op], 0,
                f"simd::Op::{op} is registered at {sorted(tiers)} but never "
                f"at IsaTier::kScalar — every kernel family needs a scalar "
                f"counterpart (the dispatch fallback and the differential "
                f"oracle); register one from a <fmt>_scalar.cpp table TU"))
    return violations


def check_argus_contracts(repo: str) -> list[Violation]:
    """Every TU that registers a kernel must be analyzable by Kestrel Argus:
    a `// argus-contract: format=<f> isa=<i>` TU header plus at least one
    `// argus-kernel:` block. Without them the abstract interpreter skips
    the TU and its loads/stores are never proven in bounds."""
    kernels_dir = os.path.join(repo, KERNELS_DIR)
    if not os.path.isdir(kernels_dir):
        return []
    violations = []
    for name in sorted(os.listdir(kernels_dir)):
        if not name.endswith(".cpp"):
            continue
        rel = os.path.join(KERNELS_DIR, name)
        text = read_text(os.path.join(kernels_dir, name))
        if not REGISTER_MACRO_RE.search(text):
            continue
        if not ARGUS_CONTRACT_RE.search(text):
            violations.append(Violation(
                "argus-contract", rel, 0,
                "kernel TU has no parseable '// argus-contract: format=<f> "
                "isa=<i>' header — tools/argus/argus.py skips it, so its "
                "loads/stores are never proven in bounds (DESIGN.md §10)"))
        elif not ARGUS_KERNEL_RE.search(text):
            violations.append(Violation(
                "argus-contract", rel, 0,
                "kernel TU has an argus-contract header but no "
                "'// argus-kernel:' block — the registered kernels carry "
                "no param/extent contract for the abstract interpreter"))
    return violations


SVC_DIR = os.path.join("src", "svc")
SVC_BARE_THROW_RE = re.compile(r"\bthrow\s+(::)?std\s*::\s*\w+")


def check_svc_structured_errors(repo: str) -> list[Violation]:
    """src/svc/ may only throw the structured kestrel error types; a bare
    `throw std::*` is an API response clients cannot dispatch on."""
    violations = []
    svc_root = os.path.join(repo, SVC_DIR)
    if not os.path.isdir(svc_root):
        return violations
    for path in iter_source_files(svc_root):
        rel = os.path.relpath(path, repo)
        code = strip_comments_and_strings(read_text(path))
        for lineno, line in enumerate(code.splitlines(), start=1):
            m = SVC_BARE_THROW_RE.search(line)
            if m:
                violations.append(Violation(
                    "svc-structured-errors", rel, lineno,
                    f"bare '{m.group(0)}' in the service layer — throw a "
                    f"structured kestrel error (RejectedError, BudgetError, "
                    f"KESTREL_CHECK/KESTREL_FAIL) so clients can dispatch "
                    f"on the decline"))
    return violations


SCHEMA_PREFIX = "kestrel-scope-metrics-"
SCHEMA_CONSTANT = "kMetricsSchema"
SCHEMA_HOME = os.path.join("src", "prof", "report.hpp")
# A writer emitting the "schema" JSON key: the C++ source spells the quoted
# key as \"schema\" inside a string literal.
SCHEMA_KEY_EMIT = '\\"schema\\"'


def check_prof_schema_version(repo: str) -> list[Violation]:
    violations = []
    for top in ("src", "bench", "examples"):
        root = os.path.join(repo, top)
        if not os.path.isdir(root):
            continue
        for path in iter_source_files(root):
            rel = os.path.relpath(path, repo)
            if rel == SCHEMA_HOME:
                continue  # the constants' single definition site
            code = strip_comments_and_strings(read_text(path),
                                              keep_strings=True)
            for lineno, line in enumerate(code.splitlines(), start=1):
                if SCHEMA_PREFIX in line:
                    violations.append(Violation(
                        "prof-schema-version", rel, lineno,
                        f"hardcodes a '{SCHEMA_PREFIX}...' schema string — "
                        f"use prof::{SCHEMA_CONSTANT} (or "
                        f"{SCHEMA_CONSTANT}V1) from {SCHEMA_HOME} so every "
                        f"export path versions together"))
                elif SCHEMA_KEY_EMIT in line and SCHEMA_CONSTANT not in line:
                    violations.append(Violation(
                        "prof-schema-version", rel, lineno,
                        f"emits a \"schema\" JSON key without "
                        f"prof::{SCHEMA_CONSTANT} on the same line — the "
                        f"document's declared version can drift from the "
                        f"shared constant"))
    return violations


def lint(repo: str) -> list[Violation]:
    violations = []
    violations += check_kernel_table(repo)
    violations += check_isa_flags(repo)
    violations += check_aligned_loads(repo)
    violations += check_banned_constructs(repo)
    violations += check_kernel_perf_reporting(repo)
    violations += check_abft_hook(repo)
    violations += check_flock_pool_safety(repo)
    violations += check_slim_kernel_contract(repo)
    violations += check_kernel_op_scalar(repo)
    violations += check_argus_contracts(repo)
    violations += check_svc_structured_errors(repo)
    violations += check_prof_schema_version(repo)
    return violations


# ---------------------------------------------------------------------------
# Self-test: seed violations into fixture trees and assert each rule fires.
# ---------------------------------------------------------------------------

def _write(root: str, rel: str, content: str) -> None:
    path = os.path.join(root, rel)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        f.write(content)


CLEAN_REGISTRATION = """#pragma once
#define KESTREL_KERNEL_TABLE(X) \\
  X(foo, scalar)                \\
  X(foo, avx512)
"""

CLEAN_SCALAR_TU = """
// argus-contract: format=foo isa=scalar
namespace k {
// argus-kernel: foo_spmv_scalar
void foo_spmv_scalar() {}
void register_foo_scalar() {
  KESTREL_REGISTER_KERNEL(kFooSpmv, kScalar, foo_spmv_scalar);
}
}
"""

CLEAN_AVX512_TU = """
// argus-contract: format=foo isa=avx512
namespace k {
// argus-kernel: foo_spmv_avx512
void foo_spmv_avx512(double* p) {
  // kestrel-aligned: p comes from AlignedBuffer<double, 64> (aligned.hpp)
  _mm512_load_pd(p);
}
void register_foo_avx512() {
  KESTREL_REGISTER_KERNEL(kFooSpmv, kAvx512, foo_spmv_avx512);
}
}
"""

CLEAN_FORMAT_TU = """
// flock-pool-safe: row
namespace k {
void Foo_spmv(const double* x, double* y) {
  KESTREL_PROF_SPMV("MatMult(foo)", 2 * nnz(), spmv_traffic_bytes());
  (void)x; (void)y;
}
void Foo_abft_col_checksum(double* c) { (void)c; }
}
"""

CLEAN_CMAKE = """
set(KESTREL_KERNEL_SOURCES_SCALAR
  mat/kernels/foo_scalar.cpp)
set(KESTREL_KERNEL_SOURCES_AVX512
  mat/kernels/foo_avx512.cpp)
set_source_files_properties(${KESTREL_KERNEL_SOURCES_AVX512}
  PROPERTIES COMPILE_OPTIONS
  "-mavx512f;-mavx512dq;-mavx512vl;-mavx512bw;-mfma")
"""


def _make_clean_fixture(root: str) -> None:
    _write(root, REGISTRATION_HPP, CLEAN_REGISTRATION)
    _write(root, os.path.join(KERNELS_DIR, "foo_scalar.cpp"), CLEAN_SCALAR_TU)
    _write(root, os.path.join(KERNELS_DIR, "foo_avx512.cpp"), CLEAN_AVX512_TU)
    _write(root, os.path.join("src", "mat", "foo.cpp"), CLEAN_FORMAT_TU)
    _write(root, SRC_CMAKE, CLEAN_CMAKE)


def self_test() -> int:
    failures = []

    def expect(name: str, rules_found: set, rule: str, present: bool) -> None:
        ok = (rule in rules_found) == present
        verb = "fired" if present else "stayed quiet"
        if not ok:
            failures.append(
                f"{name}: expected rule '{rule}' to have {verb}; "
                f"rules found: {sorted(rules_found)}")

    with tempfile.TemporaryDirectory(prefix="kestrel_lint_selftest_") as tmp:
        # 0. A clean, consistent fixture produces no violations at all.
        clean = os.path.join(tmp, "clean")
        _make_clean_fixture(clean)
        got = lint(clean)
        if got:
            failures.append("clean fixture should pass, got:\n  " +
                            "\n  ".join(str(v) for v in got))

        # 1. Vector cell without a scalar counterpart.
        fx = os.path.join(tmp, "no_scalar")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP,
               "#define KESTREL_KERNEL_TABLE(X) \\\n  X(foo, avx512)\n")
        expect("no_scalar", {v.rule for v in lint(fx)},
               "kernel-table-scalar", True)

        # 2. Kernel TU on disk that is not a table cell.
        fx = os.path.join(tmp, "unregistered_tu")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "bar_avx2.cpp"),
               "void register_bar_avx2() {}\n")
        expect("unregistered_tu", {v.rule for v in lint(fx)},
               "kernel-table-tu", True)

        # 3. TU registering a tier that contradicts its filename/flags.
        fx = os.path.join(tmp, "tier_mismatch")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_avx512.cpp"),
               CLEAN_AVX512_TU.replace("kAvx512,", "kAvx2,"))
        expect("tier_mismatch", {v.rule for v in lint(fx)},
               "kernel-table-tu", True)

        # 4. ISA source list missing the required -m flags.
        fx = os.path.join(tmp, "missing_flags")
        _make_clean_fixture(fx)
        _write(fx, SRC_CMAKE, CLEAN_CMAKE.replace("-mavx512f;", ""))
        expect("missing_flags", {v.rule for v in lint(fx)},
               "kernel-isa-flags", True)

        # 5. Aligned load without a provenance annotation.
        fx = os.path.join(tmp, "unannotated_load")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_avx512.cpp"),
               CLEAN_AVX512_TU.replace(
                   "  // kestrel-aligned: p comes from AlignedBuffer"
                   "<double, 64> (aligned.hpp)\n", ""))
        expect("unannotated_load", {v.rule for v in lint(fx)},
               "aligned-load-provenance", True)

        # 6. Raw new in kernel code; std::thread outside par/.
        fx = os.path.join(tmp, "banned")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_scalar.cpp"),
               CLEAN_SCALAR_TU + "\nvoid leak() { double* p = new double[8];"
                                 " (void)p; }\n")
        _write(fx, os.path.join("src", "mat", "rogue.cpp"),
               "#include <thread>\nvoid t() { std::thread x([]{}); "
               "x.join(); }\n")
        rules = {v.rule for v in lint(fx)}
        expect("banned", rules, "banned-construct", True)

        # 7. std::thread inside src/par/ (the fabric) and src/svc/ (the
        # service's request workers) and the hardware query are allowed.
        fx = os.path.join(tmp, "allowed_thread")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "par", "comm.cpp"),
               "#include <thread>\nvoid t() { std::thread x([]{}); "
               "x.join(); }\n")
        _write(fx, os.path.join("src", "svc", "workers.cpp"),
               "#include <thread>\nvoid w() { std::thread x([]{}); "
               "x.join(); }\n")
        _write(fx, os.path.join("src", "perf", "machine.cpp"),
               "#include <thread>\nunsigned n() "
               "{ return std::thread::hardware_concurrency(); }\n")
        _write(fx, os.path.join("src", "prof", "stacks.cpp"),
               "#include <map>\n#include <thread>\n"
               "std::map<std::thread::id, int> depth;\n")
        expect("allowed_thread", {v.rule for v in lint(fx)},
               "banned-construct", False)

        # 8. A table format whose TU never reports spmv flops/bytes.
        fx = os.path.join(tmp, "silent_format")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "mat", "foo.cpp"),
               CLEAN_FORMAT_TU.replace(
                   '  KESTREL_PROF_SPMV("MatMult(foo)", 2 * nnz(), '
                   'spmv_traffic_bytes());\n', ''))
        expect("silent_format", {v.rule for v in lint(fx)},
               "kernel-perf-reporting", True)

        # 9. A table format with no format TU at all.
        fx = os.path.join(tmp, "missing_format_tu")
        _make_clean_fixture(fx)
        os.remove(os.path.join(fx, "src", "mat", "foo.cpp"))
        expect("missing_format_tu", {v.rule for v in lint(fx)},
               "kernel-perf-reporting", True)

        # 10. Talon wired up as vector-only: its AVX-512 cell exists but
        # the scalar oracle cell is missing.
        fx = os.path.join(tmp, "talon_no_scalar")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP,
               CLEAN_REGISTRATION.rstrip("\n") +
               "                \\\n  X(talon, avx512)\n")
        expect("talon_no_scalar", {v.rule for v in lint(fx)},
               "kernel-table-scalar", True)

        # 11. Talon format TU that never calls KESTREL_PROF_SPMV.
        fx = os.path.join(tmp, "talon_silent_format")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP,
               CLEAN_REGISTRATION.rstrip("\n") +
               "                \\\n  X(talon, scalar)\n")
        _write(fx, os.path.join(KERNELS_DIR, "talon_scalar.cpp"),
               CLEAN_SCALAR_TU.replace("foo", "talon")
                              .replace("kFooSpmv", "kTalonSpmv"))
        _write(fx, os.path.join("src", "mat", "talon.cpp"),
               "namespace k {\n"
               "void Talon_spmv(const double* x, double* y) "
               "{ (void)x; (void)y; }\n"
               "}\n")
        expect("talon_silent_format", {v.rule for v in lint(fx)},
               "kernel-perf-reporting", True)

        # 11b. A table format whose own files never define the ABFT
        # column-checksum hook.
        fx = os.path.join(tmp, "no_abft_hook")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "mat", "foo.cpp"),
               CLEAN_FORMAT_TU.replace(
                   "void Foo_abft_col_checksum(double* c) { (void)c; }\n",
                   ""))
        rules = {v.rule for v in lint(fx)}
        expect("no_abft_hook", rules, "abft-hook", True)
        expect("no_abft_hook", rules, "kernel-perf-reporting", False)

        # 11c. The hook may live in the format header instead of the TU.
        fx = os.path.join(tmp, "abft_hook_in_header")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "mat", "foo.cpp"),
               CLEAN_FORMAT_TU.replace(
                   "void Foo_abft_col_checksum(double* c) { (void)c; }\n",
                   ""))
        _write(fx, os.path.join("src", "mat", "foo.hpp"),
               "#pragma once\nvoid abft_col_checksum(double* c);\n")
        expect("abft_hook_in_header", {v.rule for v in lint(fx)},
               "abft-hook", False)

        # Shared scaffolding for the gather-pack fixtures: table cells,
        # CMake lists and TUs for a utility (non-format) kernel family.
        gather_registration = (
            CLEAN_REGISTRATION.rstrip("\n") +
            "                \\\n  X(gather, scalar)             "
            "\\\n  X(gather, avx512)\n")
        gather_cmake = (
            CLEAN_CMAKE
            .replace("mat/kernels/foo_scalar.cpp)",
                     "mat/kernels/foo_scalar.cpp\n"
                     "  mat/kernels/gather_scalar.cpp)")
            .replace("mat/kernels/foo_avx512.cpp)",
                     "mat/kernels/foo_avx512.cpp\n"
                     "  mat/kernels/gather_avx512.cpp)"))
        gather_avx512_tu = (
            CLEAN_AVX512_TU.replace("foo_spmv_avx512", "gather_pack_avx512")
                           .replace("register_foo_avx512",
                                    "register_gather_avx512")
                           .replace("kFooSpmv", "kGatherPack")
            + "// flock-pool-safe: element\n")

        # 12. A new op added vector-only: gather_avx512.cpp registers
        # kGatherPack at kAvx512, but no TU registers it at kScalar (the
        # gather_scalar.cpp TU registers a different op). The format-level
        # kernel-table-scalar rule cannot see this; kernel-op-scalar must.
        fx = os.path.join(tmp, "gather_op_no_scalar")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP, gather_registration)
        _write(fx, SRC_CMAKE, gather_cmake)
        _write(fx, os.path.join(KERNELS_DIR, "gather_scalar.cpp"),
               CLEAN_SCALAR_TU.replace("foo_spmv_scalar",
                                       "gather_aux_scalar")
                              .replace("register_foo_scalar",
                                       "register_gather_scalar")
                              .replace("kFooSpmv", "kGatherAux"))
        _write(fx, os.path.join(KERNELS_DIR, "gather_avx512.cpp"),
               gather_avx512_tu)
        rules = {v.rule for v in lint(fx)}
        expect("gather_op_no_scalar", rules, "kernel-op-scalar", True)
        expect("gather_op_no_scalar", rules, "kernel-table-scalar", False)

        # 13. A complete gather-pack family (scalar + avx512 registering the
        # same op) is fully clean — in particular kernel-perf-reporting must
        # honor the UTILITY_FORMATS exemption (no src/mat/gather.cpp).
        fx = os.path.join(tmp, "gather_clean")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP, gather_registration)
        _write(fx, SRC_CMAKE, gather_cmake)
        _write(fx, os.path.join(KERNELS_DIR, "gather_scalar.cpp"),
               CLEAN_SCALAR_TU.replace("foo_spmv_scalar",
                                       "gather_pack_scalar")
                              .replace("register_foo_scalar",
                                       "register_gather_scalar")
                              .replace("kFooSpmv", "kGatherPack"))
        _write(fx, os.path.join(KERNELS_DIR, "gather_avx512.cpp"),
               gather_avx512_tu)
        got = lint(fx)
        if got:
            failures.append(
                "gather_clean fixture should pass, got:\n  " +
                "\n  ".join(str(v) for v in got))

        # 14. Kernel TU with no argus-contract header at all.
        fx = os.path.join(tmp, "no_argus_header")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_scalar.cpp"),
               CLEAN_SCALAR_TU.replace(
                   "// argus-contract: format=foo isa=scalar\n", ""))
        expect("no_argus_header", {v.rule for v in lint(fx)},
               "argus-contract", True)

        # 15. TU header present but no per-kernel contract block.
        fx = os.path.join(tmp, "no_argus_kernel")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_scalar.cpp"),
               CLEAN_SCALAR_TU.replace(
                   "// argus-kernel: foo_spmv_scalar\n", ""))
        expect("no_argus_kernel", {v.rule for v in lint(fx)},
               "argus-contract", True)

        # 16. A bench hardcoding the schema string instead of using the
        # shared constant.
        fx = os.path.join(tmp, "hardcoded_schema")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("bench", "bench_rogue.cpp"),
               '#include <ostream>\n'
               'void w(std::ostream& os) {\n'
               '  os << "{\\"schema\\":\\"kestrel-scope-metrics-v1\\"}";\n'
               '}\n')
        expect("hardcoded_schema", {v.rule for v in lint(fx)},
               "prof-schema-version", True)

        # 17. Emitting the "schema" key from a string the constant never
        # reaches (version drift), even without naming a concrete version.
        fx = os.path.join(tmp, "drifting_schema_key")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "prof", "rogue_writer.cpp"),
               '#include <ostream>\n'
               'void w(std::ostream& os, const char* v) {\n'
               '  os << "{\\"schema\\":\\"" << v << "\\"}";\n'
               '}\n')
        expect("drifting_schema_key", {v.rule for v in lint(fx)},
               "prof-schema-version", True)

        # 18. The blessed pattern stays quiet: key emitted together with
        # the constant, version literals only in comments and report.hpp.
        fx = os.path.join(tmp, "schema_via_constant")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "prof", "report.hpp"),
               '#pragma once\n'
               'inline constexpr const char* kMetricsSchema =\n'
               '    "kestrel-scope-metrics-v2";\n')
        _write(fx, os.path.join("src", "prof", "writer.cpp"),
               '#include <ostream>\n'
               '// artifact schema: kestrel-scope-metrics-v2 (see report.hpp)\n'
               'inline constexpr const char* kMetricsSchema = "";\n'
               'void w(std::ostream& os) {\n'
               '  os << "{\\"schema\\":\\"" << kMetricsSchema << "\\"}";\n'
               '}\n')
        expect("schema_via_constant", {v.rule for v in lint(fx)},
               "prof-schema-version", False)

        # 19. A table format whose own files never declare the Flock
        # partition granularity.
        fx = os.path.join(tmp, "no_flock_declaration")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "mat", "foo.cpp"),
               CLEAN_FORMAT_TU.replace("// flock-pool-safe: row\n", ""))
        rules = {v.rule for v in lint(fx)}
        expect("no_flock_declaration", rules, "flock-pool-safety", True)
        expect("no_flock_declaration", rules, "kernel-perf-reporting", False)

        # 20. A declaration with a granularity token outside the audited
        # vocabulary (typo'd or invented) must fire too.
        fx = os.path.join(tmp, "bad_flock_granularity")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "mat", "foo.cpp"),
               CLEAN_FORMAT_TU.replace("flock-pool-safe: row",
                                       "flock-pool-safe: column"))
        expect("bad_flock_granularity", {v.rule for v in lint(fx)},
               "flock-pool-safety", True)

        # 21. A utility family (no format TU) whose kernel TUs never carry
        # the declaration: the gather-clean scaffolding minus the
        # annotation in the avx512 TU.
        fx = os.path.join(tmp, "utility_no_flock")
        _make_clean_fixture(fx)
        _write(fx, REGISTRATION_HPP, gather_registration)
        _write(fx, SRC_CMAKE, gather_cmake)
        _write(fx, os.path.join(KERNELS_DIR, "gather_scalar.cpp"),
               CLEAN_SCALAR_TU.replace("foo_spmv_scalar",
                                       "gather_pack_scalar")
                              .replace("register_foo_scalar",
                                       "register_gather_scalar")
                              .replace("kFooSpmv", "kGatherPack"))
        _write(fx, os.path.join(KERNELS_DIR, "gather_avx512.cpp"),
               gather_avx512_tu.replace("// flock-pool-safe: element\n",
                                        ""))
        expect("utility_no_flock", {v.rule for v in lint(fx)},
               "flock-pool-safety", True)

        # Kestrel Slim scaffolding: a well-formed slim scalar TU.
        slim_scalar_tu = (
            CLEAN_SCALAR_TU
            .replace("foo_spmv_scalar", "foo_slim_spmv_scalar")
            .replace("register_foo_scalar", "register_foo_slim_scalar")
            .replace("format=foo isa=scalar", "format=foo_slim isa=scalar")
            .replace("kFooSpmv", "kFooSlimSpmv"))

        # 22. Slim kernel TU that never declares its argus-contract header
        # (the scalar counterpart exists, so only the header rule fires).
        fx = os.path.join(tmp, "slim_no_contract_header")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_slim_scalar.cpp"),
               slim_scalar_tu.replace(
                   "// argus-contract: format=foo_slim isa=scalar\n", ""))
        expect("slim_no_contract_header", {v.rule for v in lint(fx)},
               "slim-kernel-contract", True)

        # 23. Slim vector TU with a proper contract header but no scalar
        # counterpart on disk: the differential sweep would have no oracle.
        fx = os.path.join(tmp, "slim_no_scalar_oracle")
        _make_clean_fixture(fx)
        _write(fx, os.path.join(KERNELS_DIR, "foo_slim_avx512.cpp"),
               CLEAN_AVX512_TU
               .replace("foo_spmv_avx512", "foo_slim_spmv_avx512")
               .replace("register_foo_avx512", "register_foo_slim_avx512")
               .replace("format=foo isa=avx512",
                        "format=foo_slim isa=avx512")
               .replace("kFooSpmv", "kFooSlimSpmv"))
        expect("slim_no_scalar_oracle", {v.rule for v in lint(fx)},
               "slim-kernel-contract", True)

        # 24. A bare std::* throw inside the service layer must fire: the
        # decline carries no structure a client could dispatch on.
        fx = os.path.join(tmp, "svc_bare_throw")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "svc", "rogue.cpp"),
               '#include <stdexcept>\n'
               'void submit_full() {\n'
               '  throw std::runtime_error("queue full");\n'
               '}\n')
        expect("svc_bare_throw", {v.rule for v in lint(fx)},
               "svc-structured-errors", True)

        # 25. Structured throws in src/svc/ stay quiet, as do std::* throws
        # outside the service layer (other layers own their own policy).
        fx = os.path.join(tmp, "svc_structured_throw")
        _make_clean_fixture(fx)
        _write(fx, os.path.join("src", "svc", "service.cpp"),
               '// a comment mentioning throw std::logic_error is fine\n'
               'void submit_full(int depth, double hint) {\n'
               '  throw RejectedError(depth, hint, "svc: queue full",\n'
               '                      __FILE__, __LINE__);\n'
               '}\n')
        _write(fx, os.path.join("src", "mat", "other_layer.cpp"),
               '#include <stdexcept>\n'
               'void boom() { throw std::runtime_error("not svc"); }\n')
        expect("svc_structured_throw", {v.rule for v in lint(fx)},
               "svc-structured-errors", False)

    if failures:
        print("kestrel_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print("  " + f, file=sys.stderr)
        return 1
    print("kestrel_lint self-test passed (28 fixtures).")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=".", help="repository root to lint")
    ap.add_argument("--self-test", action="store_true",
                    help="seed violations into fixtures and assert the "
                         "rules catch them")
    args = ap.parse_args(argv)
    if args.self_test:
        return self_test()
    violations = lint(args.repo)
    if violations:
        print(f"kestrel_lint: {len(violations)} violation(s):",
              file=sys.stderr)
        for v in violations:
            print("  " + str(v), file=sys.stderr)
        return 1
    print("kestrel_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
