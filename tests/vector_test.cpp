// Vector (BLAS-1) operation tests.

#include <gtest/gtest.h>

#include <cmath>

#include "base/aligned.hpp"
#include "base/error.hpp"
#include "vec/vector.hpp"

namespace kestrel {
namespace {

TEST(Vector, ConstructionAndFill) {
  Vector a(5);
  for (Index i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(a[i], 0.0);
  Vector b(4, 2.5);
  for (Index i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(b[i], 2.5);
  Vector c{1.0, 2.0, 3.0};
  EXPECT_EQ(c.size(), 3);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(Vector, StorageIsAligned) {
  Vector v(100);
  EXPECT_TRUE(is_aligned(v.data(), kCacheLine));
}

TEST(Vector, Axpy) {
  Vector y{1.0, 2.0, 3.0};
  Vector x{10.0, 20.0, 30.0};
  y.axpy(0.5, x);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 18.0);
}

TEST(Vector, Aypx) {
  Vector y{1.0, 2.0};
  Vector x{10.0, 10.0};
  y.aypx(3.0, x);  // y = 3y + x
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 16.0);
}

TEST(Vector, Waxpby) {
  Vector w;
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  w.waxpby(2.0, x, -1.0, y);
  EXPECT_DOUBLE_EQ(w[0], -8.0);
  EXPECT_DOUBLE_EQ(w[1], -16.0);
}

TEST(Vector, DotAndNorms) {
  Vector a{3.0, 4.0};
  Vector b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(a.dot(b), 7.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 5.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 4.0);
  EXPECT_DOUBLE_EQ(a.sum(), 7.0);
}

TEST(Vector, NormInfUsesAbsoluteValue) {
  Vector a{-9.0, 1.0};
  EXPECT_DOUBLE_EQ(a.norm_inf(), 9.0);
}

TEST(Vector, ScaleAndPointwise) {
  Vector a{2.0, 4.0};
  a.scale(0.5);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  Vector b{3.0, 5.0};
  a.pointwise_mult(b);
  EXPECT_DOUBLE_EQ(a[0], 3.0);
  EXPECT_DOUBLE_EQ(a[1], 10.0);
}

TEST(Vector, CopyFromResizes) {
  Vector a{1.0, 2.0, 3.0};
  Vector b;
  b.copy_from(a);
  EXPECT_EQ(b.size(), 3);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  b[1] = 99.0;
  EXPECT_DOUBLE_EQ(a[1], 2.0);
}

TEST(Vector, MaxpyMatchesRepeatedAxpy) {
  const Index n = 33;
  Vector base(n);
  for (Index i = 0; i < n; ++i) base[i] = 0.1 * i;
  Vector xs[5];
  const Vector* ptrs[5];
  Scalar alphas[5];
  for (int k = 0; k < 5; ++k) {
    xs[k].resize(n);
    for (Index i = 0; i < n; ++i) xs[k][i] = std::sin(0.3 * i + k);
    ptrs[k] = &xs[k];
    alphas[k] = 0.5 * (k + 1);
  }
  Vector a, b;
  a.copy_from(base);
  b.copy_from(base);
  a.maxpy(5, alphas, ptrs);
  for (int k = 0; k < 5; ++k) b.axpy(alphas[k], xs[k]);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(a[i], b[i], 1e-13);
}

TEST(Vector, MaxpyEdgeCounts) {
  Vector a{1.0, 2.0};
  const Vector x{10.0, 20.0};
  const Vector* ptrs[1] = {&x};
  const Scalar alpha[1] = {2.0};
  a.maxpy(0, nullptr, nullptr);  // no-op
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  a.maxpy(1, alpha, ptrs);  // odd count path
  EXPECT_DOUBLE_EQ(a[0], 21.0);
  EXPECT_DOUBLE_EQ(a[1], 42.0);
}

TEST(Vector, SizeMismatchThrows) {
  Vector a(3), b(4);
  EXPECT_THROW(a.axpy(1.0, b), Error);
  EXPECT_THROW(a.dot(b), Error);
  EXPECT_THROW(a.pointwise_mult(b), Error);
}

TEST(Vector, EmptyVectorOpsAreSafe) {
  Vector a, b;
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 0.0);
  EXPECT_DOUBLE_EQ(a.norm_inf(), 0.0);
}

}  // namespace
}  // namespace kestrel
