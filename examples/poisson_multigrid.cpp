// Poisson solve with geometric multigrid: -∇²u = f on the unit square with
// homogeneous Dirichlet boundary, manufactured solution
// u = sin(pi x) sin(pi y), demonstrating h-independent MG convergence and
// discretization-order error decay.
//
//   ./poisson_multigrid [-n 63] [-pc_mg_levels 4] [-mat_type sell|csr]
//                       [-mat_index 32|16] [-mat_scalar fp64|fp32]

#include <cmath>
#include <cstdio>

#include "app/laplacian.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "mat/coo.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "pc/mg.hpp"

using namespace kestrel;

namespace {

// Full-weighting bilinear interpolation for the interior Dirichlet grid
// (nf = 2*nc + 1 interior points per dimension).
mat::Csr interpolation(Index nf) {
  const Index nc = (nf - 1) / 2;
  mat::Coo p(nf * nf, nc * nc);
  for (Index cj = 0; cj < nc; ++cj) {
    for (Index ci = 0; ci < nc; ++ci) {
      const Index fi = 2 * ci + 1;
      const Index fj = 2 * cj + 1;
      for (Index dj = -1; dj <= 1; ++dj) {
        for (Index di = -1; di <= 1; ++di) {
          const Index ii = fi + di;
          const Index jj = fj + dj;
          if (ii < 0 || ii >= nf || jj < 0 || jj >= nf) continue;
          p.add(jj * nf + ii, cj * nc + ci,
                (di == 0 ? 1.0 : 0.5) * (dj == 0 ? 1.0 : 0.5));
        }
      }
    }
  }
  return p.to_csr();
}

}  // namespace

int main(int argc, char** argv) {
  Options::global().parse(argc, argv);
  const Index n = Options::global().get_index("n", 63);
  const int levels = Options::global().get_index("pc_mg_levels", 4);
  const bool use_sell =
      Options::global().get_string("mat_type", "sell") == "sell";

  std::printf("Poisson on %dx%d interior grid, %d-level multigrid, "
              "operators in %s\n",
              n, n, levels, use_sell ? "SELL" : "CSR");

  mat::Csr a = app::laplacian_dirichlet(n, n);
  // Optional Kestrel Slim streams on the fine operator (the MG hierarchy
  // below reads the fat arrays, which slim storage keeps intact).
  if (!mat::apply_slim_options(a, Options::global())) {
    std::printf("slim storage declined (16-bit column span exceeded); "
                "keeping fat streams\n");
  }
  std::vector<mat::Csr> interps;
  Index sz = n;
  for (int l = 0; l + 1 < levels && sz >= 7; ++l) {
    interps.push_back(interpolation(sz));
    sz = (sz - 1) / 2;
  }
  pc::Multigrid::Options mg_opts;
  pc::Multigrid::FormatFactory factory;
  if (use_sell) {
    factory = [](const mat::Csr& lvl) {
      return std::make_shared<const mat::Sell>(lvl);
    };
  }
  const pc::Multigrid mg(a, std::move(interps), mg_opts, factory);
  std::printf("hierarchy: %d levels, coarsest %d unknowns\n",
              mg.num_levels(), mg.level_csr(mg.num_levels() - 1).rows());

  // manufactured solution and right-hand side f = 2 pi^2 sin(pi x) sin(pi y)
  const Scalar h = 1.0 / (n + 1);
  Vector b(a.rows()), exact(a.rows());
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Scalar x = (i + 1) * h;
      const Scalar y = (j + 1) * h;
      exact[j * n + i] = std::sin(M_PI * x) * std::sin(M_PI * y);
      b[j * n + i] =
          2.0 * M_PI * M_PI * std::sin(M_PI * x) * std::sin(M_PI * y);
    }
  }

  Vector u(a.rows());
  ksp::Settings settings;
  settings.rtol = 1e-10;
  settings.monitor = [](int it, Scalar r) {
    std::printf("  it %3d  residual %.3e\n", it, r);
  };
  const ksp::Cg cg(settings);
  ksp::SeqContext ctx(a, &mg);
  const ksp::SolveResult res = cg.solve(ctx, b, u);

  Vector err;
  err.waxpby(1.0, u, -1.0, exact);
  std::printf("CG+MG %s in %d iterations\n",
              res.converged ? "converged" : "FAILED", res.iterations);
  std::printf("discretization error ||u - u_exact||_inf = %.3e "
              "(expect O(h^2) = %.3e)\n",
              err.norm_inf(), h * h);
  return res.converged ? 0 : 1;
}
