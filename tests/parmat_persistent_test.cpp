// Kestrel Slipstream acceptance tests: the persistent-channel ghost
// exchange must be bitwise indistinguishable from the seed mailbox
// transport over a long evolving run, and its steady state must touch the
// fabric without a single heap allocation.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "par/parmat.hpp"
#include "test_matrices.hpp"

namespace kestrel::par {
namespace {

/// Ghost-heavy operator: the band reaches 12 columns past each 12-row rank
/// block, so every rank exchanges with both neighbors every iteration.
mat::Csr stress_matrix() {
  return testing::banded(96, {-12, -3, -1, 1, 3, 12});
}

/// Runs `iters` power-method-style iterations (y = A x; x = y / max|y|) on
/// `nranks` ranks and returns every iteration's gathered y. The evolution
/// is computed from the gathered vector, so any cross-transport divergence
/// — even one ulp in one iteration — compounds and is caught.
std::vector<Vector> run_history(const mat::Csr& global, int nranks,
                                int iters, bool persistent) {
  std::vector<Vector> history(static_cast<std::size_t>(iters));
  auto layout =
      std::make_shared<Layout>(Layout::even(global.rows(), nranks));
  Fabric::run(nranks, [&](Comm& comm) {
    ParMatrixOptions opts;
    opts.persistent_ghosts = persistent;
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, opts);
    ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) {
      x.local()[i] = 1.0 + 1e-3 * static_cast<Scalar>(x.own_begin() + i);
    }
    for (int it = 0; it < iters; ++it) {
      a.spmv(x, y, comm);
      const Vector full = y.gather_all(comm);
      if (comm.rank() == 0) {
        history[static_cast<std::size_t>(it)] = full;
      }
      Scalar norm = 0.0;  // same on every rank: computed from `full`
      for (Index i = 0; i < full.size(); ++i) {
        norm = std::max(norm, std::abs(full[i]));
      }
      for (Index i = 0; i < x.local_size(); ++i) {
        x.local()[i] = full[x.own_begin() + i] / norm;
      }
    }
  });
  return history;
}

TEST(ParMatrixPersistent, BitwiseIdenticalToMailboxOver100Iterations) {
  const mat::Csr global = stress_matrix();
  const int nranks = 8;
  const int iters = 100;
  const auto persistent = run_history(global, nranks, iters, true);
  const auto mailbox = run_history(global, nranks, iters, false);
  ASSERT_EQ(persistent.size(), mailbox.size());
  for (std::size_t it = 0; it < persistent.size(); ++it) {
    const Vector& p = persistent[it];
    const Vector& m = mailbox[it];
    ASSERT_EQ(p.size(), m.size()) << "iteration " << it;
    // bitwise, not EXPECT_DOUBLE_EQ: the transports move identical packed
    // bytes, so even the representation must match exactly
    EXPECT_EQ(std::memcmp(p.data(), m.data(),
                          static_cast<std::size_t>(p.size()) *
                              sizeof(Scalar)),
              0)
        << "transports diverged at iteration " << it;
  }
}

TEST(ParMatrixPersistent, SteadyStateMakesZeroFabricAllocations) {
  const mat::Csr global = stress_matrix();
  auto layout = std::make_shared<Layout>(Layout::even(global.rows(), 8));
  Fabric::run(8, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) x.local()[i] = 1.0;
    // warmup: opens the persistent channels (lazy, collective) and settles
    // the pack buffers
    for (int it = 0; it < 3; ++it) a.spmv(x, y, comm);
    comm.barrier();

    // Counted window: spmv only, no collectives — every mailbox counter
    // must stay frozen while the ghost exchange keeps flowing.
    const FabricStats before = comm.stats();
    constexpr int kIters = 50;
    for (int it = 0; it < kIters; ++it) a.spmv(x, y, comm);
    const FabricStats after = comm.stats();

    EXPECT_EQ(after.mailbox_allocs, before.mailbox_allocs)
        << "rank " << comm.rank()
        << " allocated fabric payloads in steady state";
    EXPECT_EQ(after.mailbox_msgs, before.mailbox_msgs);
    // every neighbor channel fired every iteration (edge ranks have one
    // neighbor, interior ranks two), one copy per message
    const bool edge = comm.rank() == 0 || comm.rank() == comm.size() - 1;
    const auto expected = static_cast<std::uint64_t>((edge ? 1 : 2) * kIters);
    EXPECT_EQ(after.channel_sends - before.channel_sends, expected);
    EXPECT_EQ(after.payload_copies - before.payload_copies, expected);
  });
}

TEST(ParMatrixPersistent, CopiedMatrixReopensItsOwnChannels) {
  // A copied ParMatrix owns a different ghost_ buffer; its first spmv must
  // open fresh channels instead of delivering into the original's slices.
  const mat::Csr global = stress_matrix();
  auto layout = std::make_shared<Layout>(Layout::even(global.rows(), 4));
  Fabric::run(4, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) {
      x.local()[i] = 0.5 + 0.01 * static_cast<Scalar>(i);
    }
    a.spmv(x, y, comm);
    const Vector direct = y.gather_all(comm);

    const ParMatrix b = a;  // copy after a's channels exist
    a.spmv(x, y, comm);     // keep a's channels hot
    b.spmv(x, y, comm);     // must not write into a's ghost buffer
    const Vector copied = y.gather_all(comm);
    for (Index i = 0; i < direct.size(); ++i) {
      EXPECT_DOUBLE_EQ(copied[i], direct[i]) << "row " << i;
    }
  });
}

TEST(ParMatrixPersistent, MailboxOptOutStillWorks) {
  const mat::Csr global = stress_matrix();
  auto layout = std::make_shared<Layout>(Layout::even(global.rows(), 3));
  Fabric::run(3, [&](Comm& comm) {
    ParMatrixOptions opts;
    opts.persistent_ghosts = false;
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, opts);
    ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) x.local()[i] = 1.0;
    a.spmv(x, y, comm);
    const FabricStats& st = comm.stats();
    // the seed transport really was used: mailbox messages, no channels
    EXPECT_GT(st.mailbox_msgs, 0u);
    EXPECT_EQ(st.channel_sends, 0u);
  });
}

}  // namespace
}  // namespace kestrel::par
