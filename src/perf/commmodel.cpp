#include "perf/commmodel.hpp"

#include <chrono>
#include <limits>

#include "base/error.hpp"
#include "base/types.hpp"
#include "par/comm.hpp"

namespace kestrel::perf {

CommModel CommModel::fit(const std::vector<CommSample>& samples) {
  KESTREL_CHECK(samples.size() >= 2, "CommModel::fit: need >= 2 samples");
  const double n = static_cast<double>(samples.size());
  double mx = 0.0, my = 0.0;
  for (const CommSample& s : samples) {
    mx += s.bytes;
    my += s.seconds;
  }
  mx /= n;
  my /= n;
  double cov = 0.0, var = 0.0;
  for (const CommSample& s : samples) {
    cov += (s.bytes - mx) * (s.seconds - my);
    var += (s.bytes - mx) * (s.bytes - mx);
  }
  CommModel m;
  m.beta_s_per_byte = var > 0.0 ? cov / var : 0.0;
  if (m.beta_s_per_byte < 0.0) m.beta_s_per_byte = 0.0;
  m.alpha_s = my - m.beta_s_per_byte * mx;
  if (m.alpha_s < 0.0) m.alpha_s = 0.0;
  return m;
}

CommModel CommModel::measure_fabric(int reps) {
  KESTREL_CHECK(reps >= 1, "measure_fabric: need >= 1 rep");
  // Message-size ladder in scalars (8 B each): spans latency-dominated to
  // bandwidth-dominated so the least-squares split of alpha/beta is
  // well-conditioned.
  const Index sizes[] = {64, 256, 1024, 4096, 16384};
  std::vector<CommSample> samples;
  par::FabricOptions opts;
  opts.check = false;  // calibration run: measure the fast path itself
  par::Fabric::run(2, opts, [&](par::Comm& comm) {
    using Clock = std::chrono::steady_clock;
    const int peer = 1 - comm.rank();
    for (const Index n : sizes) {
      std::vector<Scalar> sendbuf(static_cast<std::size_t>(n), 1.0);
      std::vector<Scalar> recvbuf(static_cast<std::size_t>(n), 0.0);
      auto ex = comm.open_exchange({{peer, n}}, {{peer, recvbuf.data(), n}});
      const auto round_trip = [&] {
        ex->arm();
        if (comm.rank() == 0) {
          ex->send(0, sendbuf.data(), n);
          ex->wait_all();
        } else {
          ex->wait_all();
          ex->send(0, sendbuf.data(), n);
        }
      };
      for (int i = 0; i < 5; ++i) round_trip();  // warmup
      // Best of 3 trials: on an oversubscribed host (all ranks timeshare
      // one core) the minimum is the schedule-noise-free estimate.
      double best = std::numeric_limits<double>::infinity();
      for (int trial = 0; trial < 3; ++trial) {
        comm.barrier();
        const auto t0 = Clock::now();
        for (int i = 0; i < reps; ++i) round_trip();
        const double dt =
            std::chrono::duration<double>(Clock::now() - t0).count();
        if (dt < best) best = dt;
      }
      if (comm.rank() == 0) {
        samples.push_back(
            {static_cast<double>(n) * sizeof(Scalar),
             best / (2.0 * static_cast<double>(reps))});
      }
    }
  });
  return fit(samples);
}

}  // namespace kestrel::perf
