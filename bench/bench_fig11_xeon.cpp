// Figure 11 + Table 1 — "SpMV performance on different Xeon processors":
// Gflop/s of every kernel variant on Haswell, Broadwell, Skylake and KNL.
//
// Table 1's processor specifications are embedded as machine profiles; the
// modeled sweep reproduces the figure's shape. A measured column for this
// host is appended.

#include <cstdio>

#include "bench_common.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "perf/spmv_model.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  using namespace kestrel::perf;
  using simd::IsaTier;

  bench::parse_args(argc, argv);
  bench::header("Table 1: Intel processors used for evaluating SpMV");
  std::printf("%-22s %6s %10s %9s %12s %10s\n", "processor", "cores",
              "freq[GHz]", "L3[MB]", "DDR4[GB/s]", "HBM[GB/s]");
  for (const MachineProfile& m : table1_machines()) {
    std::printf("%-22s %6d %10.1f %9.1f %12.1f %10s\n", m.name.c_str(),
                m.cores, m.freq_ghz, m.l3_mb, m.dram_peak_gbs,
                m.has_mcdram() ? ">400" : "-");
  }

  bench::header(
      "Figure 11 (modeled): SpMV Gflop/s per platform, all cores, "
      "Gray-Scott 2048^2");
  const auto w = SpmvWorkload::gray_scott(2048);
  const struct {
    const char* label;
    ModelFormat fmt;
    IsaTier tier;
  } variants[] = {
      {"MKL", ModelFormat::kMklCsr, IsaTier::kScalar},
      {"CSR using novec", ModelFormat::kCsr, IsaTier::kScalar},
      {"SELL using novec", ModelFormat::kSell, IsaTier::kScalar},
      {"CSR using AVX", ModelFormat::kCsr, IsaTier::kAvx},
      {"SELL using AVX", ModelFormat::kSell, IsaTier::kAvx},
      {"CSR using AVX2", ModelFormat::kCsr, IsaTier::kAvx2},
      {"SELL using AVX2", ModelFormat::kSell, IsaTier::kAvx2},
      {"CSR using AVX512", ModelFormat::kCsr, IsaTier::kAvx512},
      {"SELL using AVX512", ModelFormat::kSell, IsaTier::kAvx512},
  };

  std::printf("%-18s", "variant \\ machine");
  for (const MachineProfile& m : table1_machines()) {
    std::printf(" %11.11s", m.name.c_str());
  }
  std::printf("\n");
  for (const auto& v : variants) {
    std::printf("%-18s", v.label);
    for (const MachineProfile& m : table1_machines()) {
      // each Xeon runs with every physical core occupied, its best memory
      const MemoryMode mode =
          m.has_mcdram() ? MemoryMode::kFlatMcdram : MemoryMode::kFlatDram;
      std::printf(" %11.2f",
                  modeled_spmv_gflops(m, mode, m.cores, v.fmt, v.tier, w));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): marginal SELL-over-CSR gains on standard\n"
      "Xeons (memory bound), big gains on KNL; Skylake ~2x Broadwell and\n"
      "Haswell thanks to six memory channels; AVX-512 CSR best on KNL,\n"
      "while CSR AVX/AVX2 peak on Skylake.\n");

  bench::header("Figure 11 (measured): this host, 1 core");
  mat::Csr csr = bench::gray_scott_matrix(bench::scaled(384));
  const simd::IsaTier best = simd::detect_best_tier();
  std::printf("host best ISA tier: %s\n\n", simd::tier_name(best));
  std::printf("%-20s %10s\n", "variant", "Gflop/s");
  for (int ti = 0; ti <= static_cast<int>(best); ++ti) {
    const IsaTier tier = static_cast<IsaTier>(ti);
    mat::Csr c2 = csr;
    c2.set_tier(tier);
    std::printf("CSR using %-10s %10.2f\n", simd::tier_name(tier),
                bench::gflops(c2, bench::time_spmv(c2)));
    mat::Sell s2(csr);
    s2.set_tier(tier);
    std::printf("SELL using %-9s %10.2f\n", simd::tier_name(tier),
                bench::gflops(s2, bench::time_spmv(s2)));
  }
  return 0;
}
