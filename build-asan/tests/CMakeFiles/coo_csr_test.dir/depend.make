# Empty dependencies file for coo_csr_test.
# This may be replaced when dependencies are built.
