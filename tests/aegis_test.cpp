// Kestrel Aegis fault-tolerance suite: deterministic fault plans, the
// transport's heal-or-fail guarantees under an 8-rank fault sweep (both
// mailbox and persistent ghost paths), ABFT-checksummed SpMV detection and
// recovery across formats, and the solver breakdown/rollback ladder
// (KSP restart, SNES fresh-Jacobian retry, TS checkpoint rewind).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <vector>

#include "aegis/abft.hpp"
#include "aegis/fault.hpp"
#include "app/laplacian.hpp"
#include "base/error.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "ksp/ksp.hpp"
#include "mat/bcsr.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/parmat.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"
#include "snes/newton.hpp"
#include "test_matrices.hpp"
#include "ts/theta.hpp"

namespace kestrel {
namespace {

Vector random_x_vec(Index n, std::uint64_t seed) {
  const auto raw = testing::random_x(n, seed);
  Vector x(n);
  for (Index i = 0; i < n; ++i) x[i] = raw[static_cast<std::size_t>(i)];
  return x;
}

// --------------------------------------------------------------------------
// FaultPlan: parsing, determinism, kill bookkeeping
// --------------------------------------------------------------------------

TEST(FaultPlan, EmptySpecIsNull) {
  EXPECT_EQ(aegis::FaultPlan::parse(""), nullptr);
}

TEST(FaultPlan, ParsesClausesAndAccessors) {
  const auto plan = aegis::FaultPlan::parse(
      "seed=42,drop=0.25,delay_ms=3,repeat=2,max_retries=5,kill=3@20");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->seed(), 42u);
  EXPECT_EQ(plan->max_retries(), 5);
  EXPECT_DOUBLE_EQ(plan->delay_ms(), 3.0);
  EXPECT_TRUE(plan->corrupts_messages());
  // Kill-only plans skip message checksum work.
  const auto kill_only = aegis::FaultPlan::parse("kill=0@1");
  ASSERT_NE(kill_only, nullptr);
  EXPECT_FALSE(kill_only->corrupts_messages());
}

TEST(FaultPlan, SpecStringReplaysBitForBit) {
  const auto a = aegis::FaultPlan::parse("seed=7,drop=0.3,dup=0.2,reorder=0.1");
  ASSERT_NE(a, nullptr);
  // The logged spec is the replay handle: parsing it back must yield the
  // identical verdict for every (src, dst, tag, seq) tuple.
  const auto b = aegis::FaultPlan::parse(a->spec());
  ASSERT_NE(b, nullptr);
  for (int src = 0; src < 4; ++src) {
    for (int dst = 0; dst < 4; ++dst) {
      for (std::uint64_t seq = 0; seq < 32; ++seq) {
        const auto va = a->message_fault(src, dst, 5, seq);
        const auto vb = b->message_fault(src, dst, 5, seq);
        EXPECT_EQ(static_cast<int>(va.kind), static_cast<int>(vb.kind));
        EXPECT_EQ(va.repeat, vb.repeat);
      }
    }
  }
}

TEST(FaultPlan, DifferentSeedsDiffer) {
  const auto a = aegis::FaultPlan::parse("seed=1,drop=0.5");
  const auto b = aegis::FaultPlan::parse("seed=2,drop=0.5");
  int differs = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq) {
    if (a->message_fault(0, 1, 0, seq).kind !=
        b->message_fault(0, 1, 0, seq).kind) {
      ++differs;
    }
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultPlan, CertainProbabilityForcesKind) {
  const auto plan = aegis::FaultPlan::parse("drop=1.0");
  for (std::uint64_t seq = 0; seq < 16; ++seq) {
    const auto v = plan->message_fault(0, 1, 2, seq);
    EXPECT_EQ(static_cast<int>(v.kind),
              static_cast<int>(aegis::FaultKind::kDrop));
    EXPECT_GE(v.repeat, 1);
  }
}

TEST(FaultPlan, KillFiresExactlyOnceAtConfiguredConsultation) {
  const auto plan = aegis::FaultPlan::parse("kill=0@3");
  EXPECT_FALSE(plan->check_kill(0));
  EXPECT_FALSE(plan->check_kill(0));
  EXPECT_TRUE(plan->check_kill(0));   // third consultation
  EXPECT_FALSE(plan->check_kill(0));  // fires once, never again
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(plan->check_kill(1));
}

TEST(FaultPlan, MalformedClauseThrowsStructuredOptionsError) {
  for (const char* spec : {"drop=abc", "kill=5", "bogus=1", "seed="}) {
    try {
      aegis::FaultPlan::parse(spec);
      FAIL() << "expected OptionsError for spec: " << spec;
    } catch (const OptionsError& e) {
      EXPECT_EQ(e.key(), "aegis_faults") << spec;
      EXPECT_FALSE(e.expected().empty()) << spec;
    }
  }
}

TEST(FaultPlan, FromEnvReadsKestrelAegis) {
  ::setenv("KESTREL_AEGIS", "seed=9,drop=0.5", 1);
  const auto plan = aegis::FaultPlan::from_env();
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->seed(), 9u);
  ::unsetenv("KESTREL_AEGIS");
  EXPECT_EQ(aegis::FaultPlan::from_env(), nullptr);
}

TEST(FaultPlan, ChecksumDetectsSingleBitFlip) {
  std::vector<double> buf(64, 1.25);
  const std::uint64_t clean =
      aegis::checksum_bytes(buf.data(), buf.size() * sizeof(double));
  std::uint64_t bits;
  std::memcpy(&bits, &buf[17], sizeof(bits));
  bits ^= 1ull << 3;
  std::memcpy(&buf[17], &bits, sizeof(bits));
  EXPECT_NE(clean,
            aegis::checksum_bytes(buf.data(), buf.size() * sizeof(double)));
}

TEST(AegisStats, PublishMetricsEmitsScopeNames) {
  aegis::stats().reset();
  aegis::stats().retries += 3;
  prof::Profiler log;
  aegis::publish_metrics(log);
  std::ostringstream os;
  prof::write_json_metrics(os, prof::reduce(log));
  EXPECT_NE(os.str().find("aegis/retries"), std::string::npos);
  EXPECT_NE(os.str().find("aegis/abft_verifications"), std::string::npos);
  aegis::stats().reset();
}

TEST(FabricTimeout, MillisecondEnvOverridesHangTimeout) {
  ::setenv("KESTREL_FABRIC_TIMEOUT_MS", "250", 1);
  const par::FabricOptions opts;
  EXPECT_NEAR(opts.hang_timeout_s, 0.25, 1e-12);
  ::unsetenv("KESTREL_FABRIC_TIMEOUT_MS");
}

// --------------------------------------------------------------------------
// ABFT: column checksums across formats, detection, recovery, escalation
// --------------------------------------------------------------------------

TEST(Abft, ColumnChecksumAgreesAcrossFormats) {
  const mat::Csr csr = app::laplacian_dirichlet(16, 16);  // 256 rows: 2 | n
  Vector oracle;
  csr.abft_col_checksum(oracle);
  ASSERT_EQ(oracle.size(), csr.cols());

  const mat::Sell sell(csr);
  const mat::CsrPerm perm{mat::Csr(csr)};
  const mat::Bcsr bcsr(csr, 2);
  const mat::Talon talon(csr);
  const mat::Matrix* formats[] = {&sell, &perm, &bcsr, &talon};
  for (const mat::Matrix* m : formats) {
    Vector c;
    m->abft_col_checksum(c);
    ASSERT_EQ(c.size(), oracle.size()) << m->format_name();
    for (Index j = 0; j < oracle.size(); ++j) {
      // Summation order differs per format; only rounding-level drift.
      EXPECT_NEAR(c[j], oracle[j], 1e-12) << m->format_name() << " col " << j;
    }
  }
}

TEST(Abft, VerifyReductionsMatchScalarReference) {
  // dot_abs / sum_abs are tier-dispatched (scalar/AVX2/AVX-512); pin them
  // against a plain serial loop over an awkward (non-multiple-of-8) length.
  const Index n = 1003;
  std::vector<Scalar> c(n), x(n);
  Scalar ref_dot = 0.0, ref_dot_abs = 0.0, ref_sum = 0.0, ref_sum_abs = 0.0;
  for (Index i = 0; i < n; ++i) {
    c[i] = std::sin(0.1 * static_cast<Scalar>(i));
    x[i] = std::cos(0.07 * static_cast<Scalar>(i)) - 0.5;
  }
  for (Index i = 0; i < n; ++i) {
    ref_dot += c[i] * x[i];
    ref_dot_abs += std::abs(c[i] * x[i]);
    ref_sum += x[i];
    ref_sum_abs += std::abs(x[i]);
  }
  Scalar s = 0.0, as = 0.0;
  aegis::dot_abs(c.data(), x.data(), n, &s, &as);
  EXPECT_NEAR(s, ref_dot, 1e-10);
  EXPECT_NEAR(as, ref_dot_abs, 1e-10);
  aegis::sum_abs(x.data(), n, &s, &as);
  EXPECT_NEAR(s, ref_sum, 1e-10);
  EXPECT_NEAR(as, ref_sum_abs, 1e-10);
}

TEST(Abft, StaticVerifyFlagsPerturbedResult) {
  const mat::Csr csr = testing::banded(64, {-3, -1, 1, 3});
  Vector colsum;
  csr.abft_col_checksum(colsum);
  const Vector x = random_x_vec(64, 5);
  Vector y;
  csr.spmv(x, y);
  Scalar drift = 0.0;
  EXPECT_TRUE(aegis::AbftMatrix::verify(colsum, x.data(), y.data(), y.size(),
                                        1e-8, &drift));
  EXPECT_LT(drift, 1e-8);
  y[3] += 1.0;
  EXPECT_FALSE(aegis::AbftMatrix::verify(colsum, x.data(), y.data(), y.size(),
                                         1e-8, &drift));
  EXPECT_GT(drift, 0.5);
}

TEST(Abft, TransientHighBitFlipDetectedAndRecovered) {
  aegis::stats().reset();
  const aegis::AbftMatrix a(
      std::make_shared<mat::Csr>(testing::banded(80, {-2, -1, 1, 2})));
  const Vector x = random_x_vec(80, 9);
  Vector y_clean;
  a.inner().spmv(x, y_clean);

  // Soft error model: flip an exponent-region bit of one entry right after
  // the multiply. The recompute-retry must restore the clean result.
  a.inject_fault_once([](Scalar* y, Index n) {
    std::uint64_t bits;
    std::memcpy(&bits, &y[n / 2], sizeof(bits));
    bits ^= 1ull << 62;
    std::memcpy(&y[n / 2], &bits, sizeof(bits));
  });
  Vector y;
  a.spmv(x, y);
  for (Index i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_clean[i]);
  EXPECT_EQ(aegis::stats().abft_failures.load(), 1u);
  EXPECT_EQ(aegis::stats().abft_retries.load(), 1u);
  EXPECT_GE(aegis::stats().abft_verifications.load(), 2u);
}

TEST(Abft, LowMantissaFlipIsBelowThresholdByDesign) {
  // Documented design point: a flip in the lowest mantissa bit perturbs the
  // sum by less than the tolerance band and is indistinguishable from
  // rounding — verification passes and no retry fires.
  aegis::stats().reset();
  const aegis::AbftMatrix a(
      std::make_shared<mat::Csr>(testing::banded(80, {-2, -1, 1, 2})));
  a.inject_fault_once([](Scalar* y, Index) {
    std::uint64_t bits;
    std::memcpy(&bits, &y[0], sizeof(bits));
    bits ^= 1ull;
    std::memcpy(&y[0], &bits, sizeof(bits));
  });
  const Vector x = random_x_vec(80, 9);
  Vector y;
  a.spmv(x, y);
  EXPECT_EQ(aegis::stats().abft_failures.load(), 0u);
}

TEST(Abft, PersistentCorruptionEscalatesToAbftError) {
  aegis::stats().reset();
  auto inner = std::make_shared<mat::Csr>(testing::banded(48, {-1, 1}));
  const aegis::AbftMatrix a(inner);  // colsum fixed from the clean values
  inner->mutable_val()[0] += 1000.0;  // corrupt the operator storage itself
  const Vector x = random_x_vec(48, 3);
  Vector y;
  try {
    a.spmv(x, y);
    FAIL() << "expected AbftError";
  } catch (const AbftError& e) {
    EXPECT_NE(e.format().find("csr"), std::string::npos);
    EXPECT_GT(e.drift(), 1.0);
  }
  // One failed multiply: initial verify failed, retry verified and failed
  // again, then escalated.
  EXPECT_EQ(aegis::stats().abft_failures.load(), 1u);
  EXPECT_EQ(aegis::stats().abft_retries.load(), 1u);
  EXPECT_EQ(aegis::stats().abft_verifications.load(), 2u);
}

TEST(Abft, VerifyEverySamplesAlternateMultiplies) {
  aegis::stats().reset();
  aegis::AbftOptions opts;
  opts.verify_every = 2;
  const aegis::AbftMatrix a(
      std::make_shared<mat::Csr>(testing::banded(32, {-1, 1})), opts);
  const Vector x = random_x_vec(32, 1);
  Vector y;
  for (int i = 0; i < 4; ++i) a.spmv(x, y);
  EXPECT_EQ(aegis::stats().abft_verifications.load(), 2u);
  EXPECT_THROW(aegis::AbftMatrix(
                   std::make_shared<mat::Csr>(testing::banded(8, {1})),
                   aegis::AbftOptions{1e-8, 1, 0}),
               Error);
}

// --------------------------------------------------------------------------
// 8-rank fault sweep: every recoverable fault kind, both ghost transports,
// must yield the bitwise-identical CG solve; kill must surface a structured
// RankFailure on every rank.
// --------------------------------------------------------------------------

std::vector<std::vector<Scalar>> fault_swept_cg(
    const mat::Csr& a, const Vector& b, int nranks, bool persistent,
    std::shared_ptr<const aegis::FaultPlan> plan) {
  auto layout =
      std::make_shared<par::Layout>(par::Layout::even(a.rows(), nranks));
  par::FabricOptions fopts;
  fopts.faults = std::move(plan);
  std::vector<std::vector<Scalar>> solution(
      static_cast<std::size_t>(nranks));
  par::Fabric::run(nranks, fopts, [&](par::Comm& comm) {
    par::ParMatrixOptions popts;
    popts.persistent_ghosts = persistent;
    popts.abft = true;  // exercise the distributed verify under faults too
    const par::ParMatrix pa =
        par::ParMatrix::from_global(a, layout, comm, popts);
    par::ParVector pb(layout, comm.rank());
    pb.set_from_global(b);
    Vector x(pa.local_rows());
    ksp::Settings settings;
    settings.rtol = 1e-10;
    settings.max_iterations = 500;
    const ksp::Cg cg(settings);
    ksp::ParContext ctx(pa, comm);
    const ksp::SolveResult res = cg.solve(ctx, pb.local(), x);
    EXPECT_TRUE(res.converged) << "rank " << comm.rank();
    solution[static_cast<std::size_t>(comm.rank())].assign(
        x.data(), x.data() + x.size());
  });
  return solution;
}

class FaultSweep : public ::testing::TestWithParam<bool> {};

TEST_P(FaultSweep, RecoverableFaultsYieldBitwiseIdenticalSolve) {
  const bool persistent = GetParam();
  const int nranks = 8;
  // SPD operator (CG requires symmetry): 12x8 Dirichlet Laplacian, 96 rows.
  const mat::Csr a = app::laplacian_dirichlet(12, 8);
  Vector b(96);
  for (Index i = 0; i < 96; ++i) b[i] = std::sin(0.3 * (i + 1));

  const auto baseline = fault_swept_cg(a, b, nranks, persistent, nullptr);
  const char* specs[] = {
      "seed=11,drop=0.3",   "seed=11,delay=0.3,delay_ms=1",
      "seed=11,dup=0.3",    "seed=11,reorder=0.3",
      "seed=11,bitflip=0.2",
      "seed=13,drop=0.1,delay=0.1,dup=0.1,reorder=0.1,bitflip=0.05",
  };
  for (const char* spec : specs) {
    aegis::stats().reset();
    const auto faulted = fault_swept_cg(a, b, nranks, persistent,
                                        aegis::FaultPlan::parse(spec));
    EXPECT_GT(aegis::stats().faults_injected.load(), 0u) << spec;
    for (int r = 0; r < nranks; ++r) {
      const auto& want = baseline[static_cast<std::size_t>(r)];
      const auto& got = faulted[static_cast<std::size_t>(r)];
      ASSERT_EQ(got.size(), want.size()) << spec << " rank " << r;
      for (std::size_t i = 0; i < want.size(); ++i) {
        // Bitwise identity: healed transport faults must be invisible.
        EXPECT_EQ(got[i], want[i]) << spec << " rank " << r << " idx " << i;
      }
    }
  }
}

TEST_P(FaultSweep, KillSurfacesRankFailureOnEveryRank) {
  const bool persistent = GetParam();
  const int nranks = 8;
  const int victim = 2;
  const mat::Csr a = testing::banded(96, {-8, -1, 1, 8});
  Vector b(96);
  for (Index i = 0; i < 96; ++i) b[i] = 1.0;
  auto layout = std::make_shared<par::Layout>(par::Layout::even(96, nranks));
  par::FabricOptions fopts;
  fopts.faults = aegis::FaultPlan::parse("kill=2@30");

  // Fabric::run rethrows only the root-cause rank's exception, so the
  // every-rank guarantee is asserted from inside the rank lambda.
  std::vector<std::atomic<int>> observed(static_cast<std::size_t>(nranks));
  for (auto& o : observed) o.store(-1);
  aegis::stats().reset();
  EXPECT_THROW(
      par::Fabric::run(nranks, fopts,
                       [&](par::Comm& comm) {
                         try {
                           par::ParMatrixOptions popts;
                           popts.persistent_ghosts = persistent;
                           const par::ParMatrix pa = par::ParMatrix::from_global(
                               a, layout, comm, popts);
                           par::ParVector pb(layout, comm.rank());
                           pb.set_from_global(b);
                           Vector x(pa.local_rows());
                           ksp::Settings settings;
                           settings.max_iterations = 500;
                           const ksp::Cg cg(settings);
                           ksp::ParContext ctx(pa, comm);
                           cg.solve(ctx, pb.local(), x);
                           comm.barrier();  // survivors block until aborted
                         } catch (const RankFailure& e) {
                           observed[static_cast<std::size_t>(comm.rank())]
                               .store(e.failed_rank());
                           throw;
                         }
                       }),
      RankFailure);
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(observed[static_cast<std::size_t>(r)].load(), victim)
        << "rank " << r << " did not observe the structured failure";
  }
  EXPECT_EQ(aegis::stats().rank_kills.load(), 1u);
}

INSTANTIATE_TEST_SUITE_P(MailboxAndPersistent, FaultSweep,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& mode) {
                           return mode.param ? "persistent" : "mailbox";
                         });

// --------------------------------------------------------------------------
// KSP breakdown zoo + recovery driver
// --------------------------------------------------------------------------

mat::Csr indefinite_diag(Index n) {
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) coo.add(i, i, (i % 2 == 0) ? 1.0 : -1.0);
  return coo.to_csr();
}

TEST(KspBreakdown, CgOnIndefiniteMatrixReportsBreakdown) {
  const mat::Csr a = indefinite_diag(8);
  Vector b(8), x(8);
  b.set(1.0);
  x.set(0.0);
  ksp::SeqContext ctx(a);
  const ksp::SolveResult res = ksp::Cg(ksp::Settings{}).solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.reason, ksp::Reason::kDivergedBreakdown);
}

TEST(KspBreakdown, NanRhsReportsDivergedNan) {
  const mat::Csr a = testing::banded(16, {-1, 1});
  Vector b(16), x(16);
  b.set(1.0);
  b[0] = std::numeric_limits<Scalar>::quiet_NaN();
  x.set(0.0);
  ksp::SeqContext ctx(a);
  for (const char* type : {"cg", "gmres", "bicgstab"}) {
    x.set(0.0);
    const ksp::SolveResult res =
        ksp::make_solver(type)->solve(ctx, b, x);
    EXPECT_FALSE(res.converged) << type;
    EXPECT_EQ(res.reason, ksp::Reason::kDivergedNan) << type;
  }
}

TEST(KspBreakdown, BiCgStabOnZeroOperatorBreaksDown) {
  mat::Coo coo(8, 8);
  for (Index i = 0; i < 8; ++i) coo.add(i, i, 0.0);
  const mat::Csr a = coo.to_csr();
  Vector b(8), x(8);
  b.set(1.0);
  x.set(0.0);
  ksp::SeqContext ctx(a);
  const ksp::SolveResult res = ksp::BiCgStab(ksp::Settings{}).solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.reason, ksp::Reason::kDivergedBreakdown);
}

TEST(KspBreakdown, MaxIterationsReported) {
  const mat::Csr a = testing::banded(64, {-4, -1, 1, 4});
  Vector b(64), x(64);
  b.set(1.0);
  x.set(0.0);
  ksp::Settings settings;
  settings.rtol = 1e-30;
  settings.atol = 0.0;
  settings.max_iterations = 2;
  ksp::SeqContext ctx(a);
  const ksp::SolveResult res = ksp::Cg(settings).solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.reason, ksp::Reason::kDivergedMaxIts);
}

TEST(KspBreakdown, ReasonNamesAreStable) {
  EXPECT_STREQ(ksp::reason_name(ksp::Reason::kDivergedBreakdown),
               "diverged_breakdown");
  EXPECT_STREQ(ksp::reason_name(ksp::Reason::kDivergedNan), "diverged_nan");
}

/// Context that sabotages exactly one operator application: either poisons
/// y with a NaN (transient soft error) or throws AbftError (unrecoverable
/// checksum escalation from a wrapped format).
class SabotageContext final : public ksp::LinearContext {
 public:
  SabotageContext(const mat::Matrix& a, int sabotage_call, bool throw_abft)
      : a_(a), sabotage_call_(sabotage_call), throw_abft_(throw_abft) {}

  Index local_size() const override { return a_.rows(); }
  void apply_operator(const Vector& x, Vector& y) override {
    a_.spmv(x, y);
    if (++calls_ == sabotage_call_) {
      if (throw_abft_) {
        throw AbftError(a_.format_name(), 42.0, "injected corruption",
                        __FILE__, __LINE__);
      }
      y[0] = std::numeric_limits<Scalar>::quiet_NaN();
    }
  }
  int calls() const { return calls_; }

 private:
  const mat::Matrix& a_;
  int sabotage_call_;
  bool throw_abft_;
  int calls_ = 0;
};

TEST(KspRecovery, RestartRecoversFromTransientNan) {
  aegis::stats().reset();
  // SPD operator so CG converges too: 8x6 Dirichlet Laplacian, 48 rows.
  const mat::Csr a = app::laplacian_dirichlet(8, 6);
  Vector b(48), x(48);
  b.set(1.0);
  ksp::Settings settings;
  settings.rtol = 1e-10;
  for (const char* type : {"cg", "gmres", "bicgstab", "fgmres"}) {
    SabotageContext poisoned(a, 2, /*throw_abft=*/false);
    x.set(0.0);
    settings.breakdown_recovery = false;
    const ksp::SolveResult plain =
        ksp::make_solver(type, settings)->solve(poisoned, b, x);
    EXPECT_FALSE(plain.converged) << type;

    SabotageContext recovered_ctx(a, 2, /*throw_abft=*/false);
    x.set(0.0);
    settings.breakdown_recovery = true;
    settings.max_restarts = 2;
    const ksp::SolveResult res =
        ksp::make_solver(type, settings)->solve(recovered_ctx, b, x);
    EXPECT_TRUE(res.converged) << type;
    EXPECT_GE(res.restarts, 1) << type;
    Vector r(48);
    a.spmv(x, r);
    for (Index i = 0; i < 48; ++i) r[i] = b[i] - r[i];
    EXPECT_LT(r.norm2(), 1e-7) << type;
  }
  EXPECT_GE(aegis::stats().solver_restarts.load(), 4u);
  EXPECT_GE(aegis::stats().recoveries.load(), 4u);
}

TEST(KspRecovery, AbftErrorCaughtByDriverWhenEnabled) {
  const mat::Csr a = app::laplacian_dirichlet(8, 6);
  Vector b(48), x(48);
  b.set(1.0);
  ksp::Settings settings;
  settings.rtol = 1e-10;

  SabotageContext throwing(a, 2, /*throw_abft=*/true);
  x.set(0.0);
  EXPECT_THROW(ksp::Cg(settings).solve(throwing, b, x), AbftError);

  SabotageContext recovered_ctx(a, 2, /*throw_abft=*/true);
  x.set(0.0);
  settings.breakdown_recovery = true;
  const ksp::SolveResult res =
      ksp::Cg(settings).solve(recovered_ctx, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.restarts, 1);
}

TEST(KspRecovery, RestartBudgetExhaustionSurfacesFailure) {
  const mat::Csr a = testing::banded(48, {-4, -1, 1, 4});
  Vector b(48), x(48);
  b.set(1.0);
  x.set(0.0);
  ksp::Settings settings;
  settings.breakdown_recovery = true;
  settings.max_restarts = 1;
  // Sabotage every single application: no restart can help.
  class AlwaysNan final : public ksp::LinearContext {
   public:
    explicit AlwaysNan(const mat::Matrix& a) : a_(a) {}
    Index local_size() const override { return a_.rows(); }
    void apply_operator(const Vector& x, Vector& y) override {
      a_.spmv(x, y);
      y[0] = std::numeric_limits<Scalar>::quiet_NaN();
    }
   private:
    const mat::Matrix& a_;
  } ctx(a);
  const ksp::SolveResult res = ksp::Cg(settings).solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.restarts, 1);
}

// --------------------------------------------------------------------------
// SNES fresh-Jacobian retry and TS checkpoint rollback
// --------------------------------------------------------------------------

/// Linear "nonlinear" problem F(u) = A u - b with analytic Jacobian A.
class LinearProblem final : public snes::NonlinearFunction {
 public:
  LinearProblem(mat::Csr a, Vector b) : a_(std::move(a)), b_(std::move(b)) {}
  Index size() const override { return a_.rows(); }
  void residual(const Vector& u, Vector& f) const override {
    a_.spmv(u, f);
    for (Index i = 0; i < f.size(); ++i) f[i] -= b_[i];
  }
  mat::Csr jacobian(const Vector&) const override { return a_; }

 private:
  mat::Csr a_;
  Vector b_;
};

TEST(SnesRecovery, FreshJacobianRetryAfterAbftError) {
  aegis::stats().reset();
  const mat::Csr a = testing::banded(24, {-2, -1, 1, 2});
  Vector b(24);
  b.set(1.0);
  const LinearProblem prob(a, b);

  snes::NewtonOptions opts;
  opts.ksp.rtol = 1e-12;
  int factory_calls = 0;
  // First assembly hands the KSP an operator whose storage is corrupted
  // after the ABFT checksum was fixed — every multiply escalates to
  // AbftError. The retry rebuilds from the user callback and succeeds.
  opts.format_factory =
      [&factory_calls](const mat::Csr& jac) -> std::shared_ptr<const mat::Matrix> {
    auto inner = std::make_shared<mat::Csr>(jac);
    auto wrapped = std::make_shared<aegis::AbftMatrix>(inner);
    if (++factory_calls == 1) inner->mutable_val()[0] += 1000.0;
    return wrapped;
  };

  Vector u(24);
  u.set(0.0);
  const snes::NewtonResult res = snes::newton_solve(prob, u, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.abft_retries, 1);
  EXPECT_GE(factory_calls, 2);
  Vector f(24);
  prob.residual(u, f);
  EXPECT_LT(f.norm2(), 1e-8);
  EXPECT_GE(aegis::stats().recoveries.load(), 1u);
}

/// du/dt = -u with one sabotaged rhs evaluation (returns NaN once).
class DecayWithGlitch final : public ts::RhsFunction {
 public:
  DecayWithGlitch(Index n, int fail_call) : n_(n), fail_call_(fail_call) {}
  Index size() const override { return n_; }
  void rhs(const Vector& u, Vector& f) const override {
    for (Index i = 0; i < n_; ++i) f[i] = -u[i];
    if (++calls_ == fail_call_) {
      f[0] = std::numeric_limits<Scalar>::quiet_NaN();
    }
  }
  mat::Csr rhs_jacobian(const Vector&) const override {
    mat::Coo coo(n_, n_);
    for (Index i = 0; i < n_; ++i) coo.add(i, i, -1.0);
    return coo.to_csr();
  }

 private:
  Index n_;
  int fail_call_;
  mutable int calls_ = 0;
};

TEST(TsRecovery, CheckpointRollbackReplaysGlitchedStep) {
  aegis::stats().reset();
  const Index n = 8;
  ts::ThetaOptions opts;
  opts.theta = 0.5;
  opts.dt = 0.1;
  opts.steps = 6;
  opts.newton.ksp.rtol = 1e-12;
  opts.checkpoint_every = 1;
  opts.max_rollbacks = 2;

  const DecayWithGlitch glitched(n, /*fail_call=*/5);
  Vector u(n);
  u.set(1.0);
  const ts::ThetaResult res = ts::theta_integrate(glitched, u, opts);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.steps_taken, 6);
  EXPECT_GE(res.rollbacks, 1);
  EXPECT_GE(aegis::stats().rollbacks.load(), 1u);

  // The replayed trajectory must match the glitch-free integration.
  const DecayWithGlitch clean(n, /*fail_call=*/0);
  Vector u_ref(n);
  u_ref.set(1.0);
  ts::ThetaOptions ref_opts = opts;
  ref_opts.checkpoint_every = 0;
  ASSERT_TRUE(ts::theta_integrate(clean, u_ref, ref_opts).completed);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(u[i], u_ref[i], 1e-12);
}

TEST(TsRecovery, WithoutCheckpointingGlitchFailsTheRun) {
  const DecayWithGlitch glitched(8, /*fail_call=*/5);
  Vector u(8);
  u.set(1.0);
  ts::ThetaOptions opts;
  opts.dt = 0.1;
  opts.steps = 6;
  opts.checkpoint_every = 0;  // rollback disabled
  const ts::ThetaResult res = ts::theta_integrate(glitched, u, opts);
  EXPECT_FALSE(res.completed);
  EXPECT_EQ(res.rollbacks, 0);
}

}  // namespace
}  // namespace kestrel
