#include "prof/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <ostream>
#include <tuple>

#include "base/error.hpp"
#include "par/comm.hpp"
#include "perf/machine.hpp"
#include "prof/hwc.hpp"
#include "prof/json.hpp"

namespace kestrel::prof {

namespace {

// Flat encodings for the collective exchange. Counts are exact as doubles
// up to 2^53, far beyond anything these counters reach in-process.
constexpr std::size_t kRowWidth = 13;   // stage,event,sec,calls,flops,bytes,
                                        // msgs,msgbytes,red,cycles,instr,
                                        // llcmiss,hwcbytes
constexpr std::size_t kSpanWidth = 10;  // rank,event,stage,t0,t1,depth,
                                        // cycles,instr,llcmiss,hwcbytes

std::vector<Scalar> encode_rows(const Profiler& p) {
  std::vector<Scalar> flat;
  const auto rows = p.rows();
  flat.reserve(rows.size() * kRowWidth);
  for (const PerfRow& r : rows) {
    flat.push_back(static_cast<Scalar>(r.stage));
    flat.push_back(static_cast<Scalar>(r.event));
    flat.push_back(r.perf.seconds);
    flat.push_back(static_cast<Scalar>(r.perf.calls));
    flat.push_back(static_cast<Scalar>(r.perf.flops));
    flat.push_back(static_cast<Scalar>(r.perf.bytes));
    flat.push_back(static_cast<Scalar>(r.perf.messages));
    flat.push_back(static_cast<Scalar>(r.perf.message_bytes));
    flat.push_back(static_cast<Scalar>(r.perf.reductions));
    flat.push_back(static_cast<Scalar>(r.perf.cycles));
    flat.push_back(static_cast<Scalar>(r.perf.instructions));
    flat.push_back(static_cast<Scalar>(r.perf.llc_misses));
    flat.push_back(static_cast<Scalar>(r.perf.hwc_bytes));
  }
  return flat;
}

std::vector<Scalar> encode_spans(const Profiler& p, int rank) {
  std::vector<Scalar> flat;
  const auto spans = p.trace();
  flat.reserve(spans.size() * kSpanWidth);
  for (const TraceSpan& s : spans) {
    flat.push_back(static_cast<Scalar>(rank));
    flat.push_back(static_cast<Scalar>(s.event));
    flat.push_back(static_cast<Scalar>(s.stage));
    flat.push_back(s.t0);
    flat.push_back(s.t1);
    flat.push_back(static_cast<Scalar>(s.depth));
    flat.push_back(static_cast<Scalar>(s.cycles));
    flat.push_back(static_cast<Scalar>(s.instructions));
    flat.push_back(static_cast<Scalar>(s.llc_misses));
    flat.push_back(static_cast<Scalar>(s.hwc_bytes));
  }
  return flat;
}

/// Accumulates one rank's row tuples into the per-(stage,event) reduction.
struct Accum {
  std::uint64_t calls_max = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  double t_sum = 0.0;
  int ranks_seen = 0;
  double flops = 0.0, bytes = 0.0;
  double messages = 0.0, message_bytes = 0.0, reductions = 0.0;
  double cycles_min = 0.0, cycles_max = 0.0, cycles_sum = 0.0;
  double instructions = 0.0, llc_misses = 0.0, hwc_bytes = 0.0;
};

Reduced finish(std::map<std::pair<int, int>, Accum> cells, int nranks,
               double elapsed_max, std::vector<RankedSpan> spans,
               std::uint64_t dropped, const Profiler& rank0_like) {
  Reduced out;
  out.nranks = nranks;
  out.elapsed_max = elapsed_max;
  out.spans = std::move(spans);
  out.dropped_spans = dropped;
  for (auto& [key, a] : cells) {
    ReducedRow r;
    r.stage = key.first;
    r.event = key.second;
    r.calls_max = a.calls_max;
    // Ranks that never touched this cell count as zero time, matching
    // PETSc: the ratio exposes imbalance including idle ranks.
    r.t_min = a.ranks_seen < nranks ? 0.0 : a.t_min;
    r.t_max = a.t_max;
    r.t_avg = a.t_sum / nranks;
    r.ratio = r.t_min > 0.0 ? r.t_max / r.t_min : 0.0;
    r.flops_total = a.flops;
    r.bytes_total = a.bytes;
    r.messages_total = a.messages;
    r.message_bytes_total = a.message_bytes;
    r.reductions_total = a.reductions;
    r.cycles_total = a.cycles_sum;
    r.cycles_min = a.ranks_seen < nranks ? 0.0 : a.cycles_min;
    r.cycles_max = a.cycles_max;
    r.cycles_avg = a.cycles_sum / nranks;
    r.instructions_total = a.instructions;
    r.llc_misses_total = a.llc_misses;
    r.hwc_bytes_total = a.hwc_bytes;
    out.messages_total += a.messages;
    out.message_bytes_total += a.message_bytes;
    out.reductions_total += a.reductions;
    out.rows.push_back(r);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const ReducedRow& a, const ReducedRow& b) {
              return std::tie(a.stage, a.event) < std::tie(b.stage, b.event);
            });
  std::sort(out.spans.begin(), out.spans.end(),
            [](const RankedSpan& a, const RankedSpan& b) {
              return std::tie(a.rank, a.span.t0) <
                     std::tie(b.rank, b.span.t0);
            });
  out.histories = rank0_like.histories();
  out.metrics = rank0_like.metrics();
  return out;
}

void accumulate(std::map<std::pair<int, int>, Accum>& cells,
                const Scalar* tuple) {
  const auto key = std::make_pair(static_cast<int>(tuple[0]),
                                  static_cast<int>(tuple[1]));
  Accum& a = cells[key];
  const double sec = tuple[2];
  if (a.ranks_seen == 0 || sec < a.t_min) a.t_min = sec;
  a.t_max = std::max(a.t_max, sec);
  a.t_sum += sec;
  a.ranks_seen += 1;
  a.calls_max = std::max(a.calls_max, static_cast<std::uint64_t>(tuple[3]));
  a.flops += tuple[4];
  a.bytes += tuple[5];
  a.messages += tuple[6];
  a.message_bytes += tuple[7];
  a.reductions += tuple[8];
  const double cycles = tuple[9];
  if (a.ranks_seen == 1 || cycles < a.cycles_min) a.cycles_min = cycles;
  a.cycles_max = std::max(a.cycles_max, cycles);
  a.cycles_sum += cycles;
  a.instructions += tuple[10];
  a.llc_misses += tuple[11];
  a.hwc_bytes += tuple[12];
}

}  // namespace

Reduced reduce(const Profiler& p) {
  std::map<std::pair<int, int>, Accum> cells;
  const auto flat = encode_rows(p);
  for (std::size_t i = 0; i + kRowWidth <= flat.size(); i += kRowWidth) {
    accumulate(cells, flat.data() + i);
  }
  std::vector<RankedSpan> spans;
  for (const TraceSpan& s : p.trace()) spans.push_back({0, s});
  return finish(std::move(cells), 1, p.elapsed_seconds(), std::move(spans),
                p.dropped_spans(), p);
}

Reduced reduce(const Profiler& p, par::Comm& comm) {
  const std::vector<Scalar> all_rows = comm.allgatherv(encode_rows(p));
  const std::vector<Scalar> all_spans =
      comm.allgatherv(encode_spans(p, comm.rank()));
  const double elapsed_max =
      comm.allreduce(p.elapsed_seconds(), par::Comm::ReduceOp::kMax);
  const std::int64_t dropped = comm.allreduce(
      static_cast<std::int64_t>(p.dropped_spans()), par::Comm::ReduceOp::kSum);

  std::map<std::pair<int, int>, Accum> cells;
  for (std::size_t i = 0; i + kRowWidth <= all_rows.size(); i += kRowWidth) {
    accumulate(cells, all_rows.data() + i);
  }
  std::vector<RankedSpan> spans;
  spans.reserve(all_spans.size() / kSpanWidth);
  for (std::size_t i = 0; i + kSpanWidth <= all_spans.size();
       i += kSpanWidth) {
    const Scalar* t = all_spans.data() + i;
    TraceSpan s;
    s.event = static_cast<int>(t[1]);
    s.stage = static_cast<int>(t[2]);
    s.t0 = t[3];
    s.t1 = t[4];
    s.depth = static_cast<int>(t[5]);
    s.cycles = static_cast<std::uint64_t>(t[6]);
    s.instructions = static_cast<std::uint64_t>(t[7]);
    s.llc_misses = static_cast<std::uint64_t>(t[8]);
    s.hwc_bytes = static_cast<std::uint64_t>(t[9]);
    spans.push_back({static_cast<int>(t[0]), s});
  }
  return finish(std::move(cells), comm.size(), elapsed_max, std::move(spans),
                static_cast<std::uint64_t>(dropped), p);
}

namespace {

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, v);
  return buf;
}

}  // namespace

void report(std::ostream& os, const Reduced& r) {
  os << "----------------------------------------------------------------"
        "--------------------------------------------------------\n";
  os << "Kestrel Scope: performance summary (" << r.nranks
     << (r.nranks == 1 ? " rank)\n" : " ranks)\n");
  os << "Elapsed time (max over ranks): " << fmt("%.6e", r.elapsed_max)
     << " s   Messages: " << fmt("%.0f", r.messages_total)
     << "   Message bytes: " << fmt("%.0f", r.message_bytes_total)
     << "   Reductions: " << fmt("%.0f", r.reductions_total) << "\n";
  os << "Times are per-rank inclusive wall seconds; Ratio = max/min over "
        "ranks (imbalance), %T = max time / elapsed.\n\n";

  char head[256];
  std::snprintf(head, sizeof(head),
                "%-28s %7s %12s %12s %6s %12s %4s %10s %8s %10s %7s\n",
                "Event", "Calls", "Time min", "Time max", "Ratio", "Time avg",
                "%T", "MFlop/s", "Msgs", "AvgLen", "Reduct");
  const char* rule =
      "--------------------------------------------------------------------"
      "----------------------------------------------------\n";

  int last_stage = -1;
  for (const ReducedRow& row : r.rows) {
    if (row.stage != last_stage) {
      os << "--- Stage " << row.stage << ": " << stage_name(row.stage)
         << " ---\n";
      os << head << rule;
      last_stage = row.stage;
    }
    const double pct =
        r.elapsed_max > 0.0 ? 100.0 * row.t_max / r.elapsed_max : 0.0;
    const double mflops =
        row.t_max > 0.0 ? row.flops_total / row.t_max / 1.0e6 : 0.0;
    const double avg_len =
        row.messages_total > 0.0 ? row.message_bytes_total / row.messages_total
                                 : 0.0;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-28s %7llu %12.4e %12.4e %6.2f %12.4e %4.0f %10.1f "
                  "%8.0f %10.1f %7.0f\n",
                  event_name(row.event).c_str(),
                  static_cast<unsigned long long>(row.calls_max), row.t_min,
                  row.t_max, row.ratio, row.t_avg, pct, mflops,
                  row.messages_total, avg_len, row.reductions_total);
    os << line;
  }
  // Kestrel Pulse: a second table with the MEASURED counters, printed only
  // when at least one cell carries them (so existing -log_view output and
  // its consumers are untouched on hwc-less runs). MB meas vs MB model is
  // the model-vs-machine loop closed per event.
  bool any_hwc = false;
  for (const ReducedRow& row : r.rows) any_hwc |= row.cycles_total > 0.0;
  if (any_hwc) {
    os << "\nKestrel Pulse: measured hardware counters (source: "
       << hwc::source_name(hwc::source()) << ")\n";
    char hhead[256];
    std::snprintf(hhead, sizeof(hhead),
                  "%-28s %14s %14s %6s %6s %12s %10s %10s\n", "Event",
                  "Cycles", "Instrs", "IPC", "CycRat", "LLCmiss", "MBmeas",
                  "MBmodel");
    const char* hrule =
        "----------------------------------------------------------------"
        "---------------------------------------\n";
    int last = -1;
    for (const ReducedRow& row : r.rows) {
      if (row.cycles_total <= 0.0) continue;
      if (row.stage != last) {
        os << "--- Stage " << row.stage << ": " << stage_name(row.stage)
           << " ---\n"
           << hhead << hrule;
        last = row.stage;
      }
      const double ipc = row.cycles_total > 0.0
                             ? row.instructions_total / row.cycles_total
                             : 0.0;
      const double cyc_ratio =
          row.cycles_min > 0.0 ? row.cycles_max / row.cycles_min : 0.0;
      char line[256];
      std::snprintf(line, sizeof(line),
                    "%-28s %14.0f %14.0f %6.2f %6.2f %12.0f %10.1f %10.1f\n",
                    event_name(row.event).c_str(), row.cycles_total,
                    row.instructions_total, ipc, cyc_ratio,
                    row.llc_misses_total, row.hwc_bytes_total / 1.0e6,
                    row.bytes_total / 1.0e6);
      os << line;
    }
  }
  if (r.dropped_spans > 0) {
    os << "\nWARNING: " << r.dropped_spans
       << " trace spans dropped (recording cap); the trace is truncated.\n";
  }
  os << rule;
}

void write_chrome_trace(std::ostream& os, const Reduced& r) {
  // Timestamps are microseconds relative to the earliest span so Perfetto
  // opens at t=0 with every rank's track aligned on the common clock.
  double t0 = 0.0;
  bool first = true;
  for (const RankedSpan& rs : r.spans) {
    if (first || rs.span.t0 < t0) t0 = rs.span.t0;
    first = false;
  }

  os << "{\"traceEvents\":[";
  bool need_comma = false;
  for (int rank = 0; rank < r.nranks; ++rank) {
    if (need_comma) os << ",";
    need_comma = true;
    os << "\n{\"ph\":\"M\",\"pid\":0,\"tid\":" << rank
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << rank
       << "\"}}";
  }
  for (const RankedSpan& rs : r.spans) {
    const double ts = (rs.span.t0 - t0) * 1.0e6;
    const double dur = (rs.span.t1 - rs.span.t0) * 1.0e6;
    if (need_comma) os << ",";
    need_comma = true;
    os << "\n{\"ph\":\"X\",\"pid\":0,\"tid\":" << rs.rank << ",\"name\":\""
       << json::escape(event_name(rs.span.event)) << "\",\"cat\":\""
       << json::escape(stage_name(rs.span.stage)) << "\",\"ts\":"
       << fmt("%.3f", ts) << ",\"dur\":" << fmt("%.3f", dur)
       << ",\"args\":{\"depth\":" << rs.span.depth;
    // Measured counters ride along as trace args (Perfetto shows them in
    // the span details pane) only when the span actually carries them.
    if (rs.span.cycles > 0) {
      os << ",\"cycles\":" << rs.span.cycles
         << ",\"instructions\":" << rs.span.instructions
         << ",\"llc_misses\":" << rs.span.llc_misses
         << ",\"hwc_bytes\":" << rs.span.hwc_bytes;
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
        "\"producer\":\"kestrel-scope\",\"dropped_spans\":"
     << r.dropped_spans << "}}\n";
}

void write_json_metrics(std::ostream& os, const Reduced& r) {
  os << "{\n\"schema\":\"" << kMetricsSchema << "\",\n";
  os << "\"nranks\":" << r.nranks << ",\n";
  os << "\"elapsed_seconds\":" << fmt("%.9e", r.elapsed_max) << ",\n";
  os << "\"totals\":{\"messages\":" << fmt("%.0f", r.messages_total)
     << ",\"message_bytes\":" << fmt("%.0f", r.message_bytes_total)
     << ",\"reductions\":" << fmt("%.0f", r.reductions_total)
     << ",\"dropped_spans\":" << r.dropped_spans << "},\n";

  // v2 addition: machine/capability metadata for the measured counters.
  // "available" reflects whether sampling was ON for this run; the probe
  // fields say what the host could have delivered.
  {
    const hwc::Capability& cap = hwc::capability();
    os << "\"hwc\":{\"available\":" << (hwc::enabled() ? "true" : "false")
       << ",\"source\":\"" << hwc::source_name(hwc::source())
       << "\",\"counters_probe\":" << (cap.counters ? "true" : "false")
       << ",\"dram_uncore_probe\":" << (cap.dram_uncore ? "true" : "false")
       << ",\"paranoid\":" << cap.paranoid
       << ",\"cache_line_bytes\":" << hwc::kCacheLineBytes
       << ",\"cpu\":\"" << json::escape(perf::host_cpu_model())
       << "\",\"detail\":\"" << json::escape(cap.detail) << "\"},\n";
  }

  os << "\"events\":[";
  bool comma = false;
  for (const ReducedRow& row : r.rows) {
    if (comma) os << ",";
    comma = true;
    const double mflops =
        row.t_max > 0.0 ? row.flops_total / row.t_max / 1.0e6 : 0.0;
    os << "\n{\"stage\":\"" << json::escape(stage_name(row.stage))
       << "\",\"event\":\"" << json::escape(event_name(row.event))
       << "\",\"calls_max\":" << row.calls_max
       << ",\"time_min\":" << fmt("%.9e", row.t_min)
       << ",\"time_max\":" << fmt("%.9e", row.t_max)
       << ",\"time_avg\":" << fmt("%.9e", row.t_avg)
       << ",\"ratio\":" << fmt("%.4f", row.ratio)
       << ",\"flops_total\":" << fmt("%.0f", row.flops_total)
       << ",\"bytes_total\":" << fmt("%.0f", row.bytes_total)
       << ",\"mflops_per_s\":" << fmt("%.3f", mflops)
       << ",\"messages\":" << fmt("%.0f", row.messages_total)
       << ",\"message_bytes\":" << fmt("%.0f", row.message_bytes_total)
       << ",\"reductions\":" << fmt("%.0f", row.reductions_total);
    // v2 addition: measured counters, only on rows that carry them (rows
    // from hwc-less runs stay bit-identical to v1 apart from the schema).
    if (row.cycles_total > 0.0) {
      const double ipc = row.instructions_total / row.cycles_total;
      os << ",\"cycles_total\":" << fmt("%.0f", row.cycles_total)
         << ",\"cycles_min\":" << fmt("%.0f", row.cycles_min)
         << ",\"cycles_max\":" << fmt("%.0f", row.cycles_max)
         << ",\"cycles_avg\":" << fmt("%.1f", row.cycles_avg)
         << ",\"instructions_total\":" << fmt("%.0f", row.instructions_total)
         << ",\"llc_misses_total\":" << fmt("%.0f", row.llc_misses_total)
         << ",\"hwc_bytes_total\":" << fmt("%.0f", row.hwc_bytes_total)
         << ",\"ipc\":" << fmt("%.4f", ipc);
    }
    os << "}";
  }
  os << "\n],\n";

  os << "\"histories\":{";
  comma = false;
  for (const auto& [name, series] : r.histories) {
    if (comma) os << ",";
    comma = true;
    os << "\n\"" << json::escape(name) << "\":[";
    bool inner = false;
    for (const auto& [x, y] : series) {
      if (inner) os << ",";
      inner = true;
      os << "[" << fmt("%.9e", x) << "," << fmt("%.9e", y) << "]";
    }
    os << "]";
  }
  os << "\n},\n";

  os << "\"metrics\":{";
  comma = false;
  for (const auto& [name, value] : r.metrics) {
    if (comma) os << ",";
    comma = true;
    os << "\n\"" << json::escape(name) << "\":" << fmt("%.9e", value);
  }
  os << "\n}\n}\n";
}

void export_all(const LogConfig& cfg, const Profiler& p, par::Comm* comm) {
  if (!cfg.any()) return;
  const Reduced r = comm != nullptr ? reduce(p, *comm) : reduce(p);
  if (comm != nullptr && comm->rank() != 0) return;
  if (cfg.view) report(std::cout, r);
  if (!cfg.trace_path.empty()) {
    std::ofstream os(cfg.trace_path);
    KESTREL_CHECK(os.good(),
                  "prof: cannot open trace file '" + cfg.trace_path + "'");
    write_chrome_trace(os, r);
  }
  if (!cfg.json_path.empty()) {
    std::ofstream os(cfg.json_path);
    KESTREL_CHECK(os.good(),
                  "prof: cannot open metrics file '" + cfg.json_path + "'");
    write_json_metrics(os, r);
  }
}

}  // namespace kestrel::prof
