#include "mat/slim.hpp"

#include <algorithm>
#include <cstdint>
#include <string>

#include "base/error.hpp"
#include "base/options.hpp"
#include "mat/matrix.hpp"

namespace kestrel::mat {

SlimOptions slim_options_from(const Options& opts) {
  SlimOptions o;
  const std::string idx = opts.get_string("mat_index", "32");
  if (idx == "16") {
    o.idx16 = true;
  } else if (idx != "32") {
    throw OptionsError("mat_index", idx, "32 or 16", __FILE__, __LINE__);
  }
  const std::string sca = opts.get_string("mat_scalar", "fp64");
  if (sca == "fp32") {
    o.fp32 = true;
  } else if (sca != "fp64") {
    throw OptionsError("mat_scalar", sca, "fp64 or fp32", __FILE__, __LINE__);
  }
  return o;
}

bool apply_slim_options(Matrix& m, const Options& opts) {
  const SlimOptions o = slim_options_from(opts);
  if (!o.any()) return true;
  return m.set_slim(o);
}

void SlimStore::clear() {
  idx16_ = false;
  fp32_ = false;
  base_.resize(0);
  off16_.resize(0);
  val32_.resize(0);
}

bool SlimStore::attach(const SlimOptions& opts, const Index* seg, Index nseg,
                       const Index* colidx, const Scalar* val,
                       std::size_t nvals, Index scale) {
  clear();
  if (opts.idx16) {
    if (!try_build_idx16(seg, nseg, colidx, scale)) {
      clear();
      return false;
    }
    idx16_ = true;
  }
  if (opts.fp32) {
    build_val32(val, nvals);
    fp32_ = true;
  }
  return true;
}

bool SlimStore::attach_values(const SlimOptions& opts, const Scalar* val,
                              std::size_t nvals) {
  clear();
  if (opts.fp32) {
    build_val32(val, nvals);
    fp32_ = true;
  }
  return true;
}

void SlimStore::refresh_values(const Scalar* val, std::size_t nvals) {
  if (fp32_) build_val32(val, nvals);
}

bool SlimStore::try_build_idx16(const Index* seg, Index nseg,
                                const Index* colidx, Index scale) {
  base_.resize(static_cast<std::size_t>(nseg));
  const Index total = seg != nullptr ? seg[nseg] : 0;
  off16_.resize(static_cast<std::size_t>(total));
  for (Index i = 0; i < nseg; ++i) {
    const Index b = seg[i];
    const Index e = seg[i + 1];
    Index lo = 0;
    if (b < e) {
      lo = colidx[b];
      for (Index k = b + 1; k < e; ++k) lo = std::min(lo, colidx[k]);
    }
    base_[static_cast<std::size_t>(i)] = lo * scale;
    for (Index k = b; k < e; ++k) {
      const std::int64_t off =
          static_cast<std::int64_t>(colidx[k] - lo) * scale;
      if (off > 65535) return false;  // span overflows u16: caller stays fat
      off16_[static_cast<std::size_t>(k)] = static_cast<std::uint16_t>(off);
    }
  }
  return true;
}

void SlimStore::build_val32(const Scalar* val, std::size_t nvals) {
  val32_.resize(nvals);
  for (std::size_t i = 0; i < nvals; ++i) {
    val32_[i] = static_cast<float>(val[i]);
  }
}

}  // namespace kestrel::mat
