// ISA detection and kernel dispatch tests.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "base/options.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"

namespace kestrel::simd {
namespace {

TEST(Isa, TierNamesRoundTrip) {
  for (IsaTier t : {IsaTier::kScalar, IsaTier::kAvx, IsaTier::kAvx2,
                    IsaTier::kAvx512}) {
    EXPECT_EQ(parse_tier(tier_name(t)), t);
  }
}

TEST(Isa, ParseAcceptsAliases) {
  EXPECT_EQ(parse_tier("novec"), IsaTier::kScalar);
  EXPECT_EQ(parse_tier("AVX-512"), IsaTier::kAvx512);
  EXPECT_EQ(parse_tier("Avx2"), IsaTier::kAvx2);
  EXPECT_THROW(parse_tier("sse9"), Error);
}

TEST(Isa, SupportIsMonotoneDownward) {
  const IsaTier best = detect_best_tier();
  for (int t = 0; t <= static_cast<int>(best); ++t) {
    EXPECT_TRUE(cpu_supports(static_cast<IsaTier>(t)));
  }
}

TEST(Isa, ScalarAlwaysSupported) {
  EXPECT_TRUE(cpu_supports(IsaTier::kScalar));
}

TEST(Dispatch, ScalarKernelsAlwaysRegistered) {
  for (Op op : {Op::kCsrSpmv, Op::kCsrSpmvAddRows, Op::kSellSpmv,
                Op::kSellSpmvAdd, Op::kSellSpmvBitmask, Op::kCsrPermSpmv,
                Op::kBcsrSpmv}) {
    EXPECT_TRUE(has_exact(op, IsaTier::kScalar));
    EXPECT_NE(lookup(op, IsaTier::kScalar), nullptr);
  }
}

TEST(Dispatch, ResolveFallsBackToLowerTier) {
  // BCSR has scalar and AVX2 kernels only: an AVX-512 request resolves to
  // AVX2 (when the CPU has it), an AVX request drops to scalar.
  if (cpu_supports(IsaTier::kAvx2)) {
    EXPECT_EQ(resolve_tier(Op::kBcsrSpmv, IsaTier::kAvx512),
              IsaTier::kAvx2);
  }
  EXPECT_EQ(resolve_tier(Op::kBcsrSpmv, IsaTier::kAvx), IsaTier::kScalar);
  // CSRPerm has scalar and AVX-512 only: AVX2 request resolves to scalar.
  if (cpu_supports(IsaTier::kAvx2)) {
    EXPECT_EQ(resolve_tier(Op::kCsrPermSpmv, IsaTier::kAvx2),
              IsaTier::kScalar);
  }
}

TEST(Dispatch, ResolveNeverExceedsCpu) {
  const IsaTier best = detect_best_tier();
  const IsaTier resolved = resolve_tier(Op::kCsrSpmv, IsaTier::kAvx512);
  EXPECT_LE(static_cast<int>(resolved), static_cast<int>(best));
}

TEST(Dispatch, VectorKernelsPresentWhenCpuSupports) {
  // Full tier ladder expected for CSR and SELL mult kernels.
  for (Op op : {Op::kCsrSpmv, Op::kSellSpmv}) {
    for (int t = 0; t <= static_cast<int>(detect_best_tier()); ++t) {
      EXPECT_EQ(resolve_tier(op, static_cast<IsaTier>(t)),
                static_cast<IsaTier>(t))
          << "op=" << static_cast<int>(op) << " tier=" << t;
    }
  }
}

TEST(Dispatch, DefaultTierHonorsOption) {
  Options& opts = Options::global();
  opts.set("spmv_isa", "scalar");
  EXPECT_EQ(default_tier(), IsaTier::kScalar);
  opts.set("spmv_isa", "");
  EXPECT_EQ(default_tier(), detect_best_tier());
}

}  // namespace
}  // namespace kestrel::simd
