#include "perf/stream.hpp"

#include <algorithm>

#include "base/aligned.hpp"
#include "prof/profiler.hpp"

namespace kestrel::perf {

namespace {

// prevent the optimizer from discarding the kernels
void clobber(const double* p) { asm volatile("" : : "g"(p) : "memory"); }

}  // namespace

StreamResult run_stream(std::size_t n, int repetitions) {
  AlignedBuffer<double> a(n), b(n), c(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = 1.0;
    b[i] = 2.0;
    c[i] = 0.0;
  }
  const double scalar = 3.0;
  const double bytes2 = 2.0 * sizeof(double) * static_cast<double>(n);
  const double bytes3 = 3.0 * sizeof(double) * static_cast<double>(n);

  StreamResult best{0.0, 0.0, 0.0, 0.0};
  for (int rep = 0; rep < repetitions; ++rep) {
    double t0 = wall_time();
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i];
    clobber(c.data());
    double t1 = wall_time();
    best.copy_gbs = std::max(best.copy_gbs, bytes2 / (t1 - t0) / 1e9);

    t0 = wall_time();
    for (std::size_t i = 0; i < n; ++i) b[i] = scalar * c[i];
    clobber(b.data());
    t1 = wall_time();
    best.scale_gbs = std::max(best.scale_gbs, bytes2 / (t1 - t0) / 1e9);

    t0 = wall_time();
    for (std::size_t i = 0; i < n; ++i) c[i] = a[i] + b[i];
    clobber(c.data());
    t1 = wall_time();
    best.add_gbs = std::max(best.add_gbs, bytes3 / (t1 - t0) / 1e9);

    t0 = wall_time();
    for (std::size_t i = 0; i < n; ++i) a[i] = b[i] + scalar * c[i];
    clobber(a.data());
    t1 = wall_time();
    best.triad_gbs = std::max(best.triad_gbs, bytes3 / (t1 - t0) / 1e9);
  }
  return best;
}

}  // namespace kestrel::perf
