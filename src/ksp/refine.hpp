#pragma once
// Kestrel Slim iterative refinement (mixed-precision solves).
//
// With -mat_scalar fp32 the SpMV streams single-precision values, which
// caps the attainable residual of a plain Krylov solve near fp32 rounding
// (~1e-7 relative). Classical iterative refinement recovers full double
// accuracy while keeping almost all the work on the cheap slim multiply:
//
//   x = 0
//   loop:
//     r = b - A·x          — through Matrix::spmv_wide, i.e. the fat
//                            double/int32 streams, so the correction
//                            target is exact to double rounding
//     stop when ||r|| <= rtol·||b||  (double tolerance)
//     solve A·d = r loosely with an inner Krylov method whose operator
//       application is the (slim) Matrix::spmv
//     x += d
//
// Each outer pass costs one wide multiply; the inner solve typically takes
// a handful of iterations at inner.rtol ~ 1e-4, all on the slim streams.
// An optional Aegis drift guard verifies the Huang–Abraham column-checksum
// invariant on every wide residual multiply, counting (not throwing on)
// violations — the outer loop is itself self-correcting, so a transient
// fault surfaces as one extra outer iteration plus a tripped counter.

#include <functional>
#include <string>

#include "base/types.hpp"
#include "ksp/ksp.hpp"
#include "mat/matrix.hpp"
#include "vec/vector.hpp"

namespace kestrel::pc {
class Pc;
}

namespace kestrel::ksp {

struct RefineSettings {
  Scalar rtol = 1e-10;  ///< outer relative tolerance, on the WIDE residual
  Scalar atol = 1e-50;
  int max_outer = 20;
  /// Inner Krylov method (make_solver name: cg, gmres, bicgstab, ...).
  std::string inner_type = "cg";
  /// Inner solver settings; the loose default rtol is the point — the
  /// inner solve only needs to gain a few digits per outer pass, well
  /// within fp32's reach.
  Settings inner = loose_inner();
  /// Aegis drift guard on the wide residual multiplies (see header).
  bool abft_guard = true;
  Scalar abft_tol = 1e-8;
  /// Called once per outer iteration with (outer index, wide ||r||).
  std::function<void(int, Scalar)> monitor;

  static Settings loose_inner() {
    Settings s;
    s.rtol = 1e-4;
    s.max_iterations = 1000;
    return s;
  }
};

struct RefineResult {
  bool converged = false;
  int outer_iterations = 0;
  int inner_iterations = 0;  ///< summed over all inner solves
  Scalar residual_norm = 0.0;  ///< final WIDE residual norm
  int abft_trips = 0;  ///< drift-guard violations observed (informational)
};

/// Solves A x = b to double tolerance by iterative refinement over the
/// matrix's (possibly slim) spmv; see the header comment. The incoming x
/// is the initial guess. `pc` (optional) preconditions the inner solves.
RefineResult refine_solve(const mat::Matrix& a, const Vector& b, Vector& x,
                          const RefineSettings& settings = {},
                          const pc::Pc* pc = nullptr);

}  // namespace kestrel::ksp
