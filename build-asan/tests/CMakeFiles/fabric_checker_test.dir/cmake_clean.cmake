file(REMOVE_RECURSE
  "CMakeFiles/fabric_checker_test.dir/fabric_checker_test.cpp.o"
  "CMakeFiles/fabric_checker_test.dir/fabric_checker_test.cpp.o.d"
  "fabric_checker_test"
  "fabric_checker_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
