# Empty dependencies file for spgemm_test.
# This may be replaced when dependencies are built.
