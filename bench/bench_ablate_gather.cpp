// Ablation (paper sections 5.5 / 7.2): hardware gather + FMA (AVX2) versus
// emulated gather (scalar loads + insert) with separate multiply/add (AVX).
// The paper observed the surprising regression that AVX2 CSR is SLOWER
// than AVX CSR on KNL, speculating that the serialized FMA chain (each FMA
// depends on the previous) hurts while AVX's separate mul/add overlap.
// This bench isolates the comparison for both CSR and SELL on the host.

#include <cstdio>

#include "bench_common.hpp"
#include "mat/sell.hpp"
#include "simd/isa.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  using simd::IsaTier;

  bench::parse_args(argc, argv);
  bench::header(
      "Ablation 5.5/7.2: hardware gather+FMA (AVX2) vs emulated gather with "
      "separate mul/add (AVX)");
  if (!simd::cpu_supports(IsaTier::kAvx2)) {
    std::printf("host lacks AVX2; nothing to compare\n");
    return 0;
  }

  const mat::Csr csr = bench::gray_scott_matrix(bench::scaled(384));
  std::printf("%-10s %16s %16s %10s\n", "format", "AVX (emul) GF",
              "AVX2 (hw) GF", "AVX/AVX2");

  {
    mat::Csr a1 = csr, a2 = csr;
    a1.set_tier(IsaTier::kAvx);
    a2.set_tier(IsaTier::kAvx2);
    const double t1 = bench::time_spmv(a1);
    const double t2 = bench::time_spmv(a2);
    std::printf("%-10s %16.2f %16.2f %9.2fx\n", "CSR",
                bench::gflops(a1, t1), bench::gflops(a2, t2), t2 / t1);
  }
  {
    mat::Sell s1(csr), s2(csr);
    s1.set_tier(IsaTier::kAvx);
    s2.set_tier(IsaTier::kAvx2);
    const double t1 = bench::time_spmv(s1);
    const double t2 = bench::time_spmv(s2);
    std::printf("%-10s %16.2f %16.2f %9.2fx\n", "SELL",
                bench::gflops(s1, t1), bench::gflops(s2, t2), t2 / t1);
  }
  std::printf(
      "\nExpected (paper, on KNL): CSR regresses going AVX -> AVX2 (the\n"
      "FMA in iteration i waits for iteration i-1's FMA in the same row\n"
      "reduction); SELL's independent per-lane accumulators make AVX and\n"
      "AVX2 roughly comparable. Hosts with slow gather units amplify the\n"
      "effect.\n");
  return 0;
}
