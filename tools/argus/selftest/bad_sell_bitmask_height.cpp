// SELF-TEST FIXTURE — the historical AVX-512 SELL bitmask bug, verbatim.
//
// This is the seed-tree version of sell_spmv_bitmask_avx512 (fixed in the
// Sentry PR): the kernel hard-codes slice height 8 (`a.bitmask[k / 8]`,
// `row0 = s * 8`) while the dispatcher hands it any c that is a multiple
// of 8. For c > 8 the bitmask word index runs past stored/c words and the
// computed rows land in the wrong place. Under the honest dispatch
// contract divides(8, c), Argus must refuse the bitmask subscript.
//
// expect-violation: bounds :: bitmask
// expect-violation: mask-provenance

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell isa=avx512

namespace kestrel::mat::kernels {

namespace {

template <bool Add>
inline void store_lanes(Scalar* y, Index nrows, Index lane0, __m512d acc) {
  const Index valid = nrows - lane0;
  if (valid >= 8) {
    if constexpr (Add) {
      _mm512_storeu_pd(y, _mm512_add_pd(_mm512_loadu_pd(y), acc));
    } else {
      _mm512_storeu_pd(y, acc);
    }
  } else if (valid > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << valid) - 1u);
    if constexpr (Add) {
      const __m512d old = _mm512_maskz_loadu_pd(mask, y);
      _mm512_mask_storeu_pd(y, mask, _mm512_add_pd(old, acc));
    } else {
      _mm512_mask_storeu_pd(y, mask, acc);
    }
  }
}

// argus-kernel: sell_spmv_bitmask_avx512
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(8, c)
// argus-traffic: none
void sell_spmv_bitmask_avx512(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;  // requires c == 8 — but the dispatcher never did
  for (Index s = 0; s < a.nslices; ++s) {
    __m512d acc = _mm512_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    for (Index k = begin; k < end; k += 8) {
      const __mmask8 mask = static_cast<__mmask8>(a.bitmask[k / 8]);
      const __m512d vals = _mm512_maskz_loadu_pd(mask, a.val + k);
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
      const __m512d vx =
          _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
      acc = _mm512_mask3_fmadd_pd(vals, vx, acc, mask);
    }
    const Index row0 = s * 8;
    const Index nrows = (row0 + 8 <= a.m) ? 8 : (a.m - row0);
    store_lanes<false>(y + row0, nrows, 0, acc);
  }
}

}  // namespace

void register_sell_bitmask_fixture() {
  KESTREL_REGISTER_KERNEL(kSellSpmvBitmask, kAvx512, sell_spmv_bitmask_avx512);
}

}  // namespace kestrel::mat::kernels
