#pragma once
// Explicit kernel registration entry points, one per kernel translation
// unit. Dispatch calls these lazily (once) instead of relying on static
// initializers, which a static-library link could silently drop.

namespace kestrel::mat::kernels {

void register_csr_scalar();
void register_csr_avx();
void register_csr_avx2();
void register_csr_avx512();
void register_sell_scalar();
void register_sell_avx();
void register_sell_avx2();
void register_sell_avx512();
void register_csr_perm_scalar();
void register_csr_perm_avx512();
void register_bcsr_scalar();
void register_bcsr_avx2();

}  // namespace kestrel::mat::kernels
