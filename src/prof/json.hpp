#pragma once
// Minimal JSON support for Kestrel Scope: string escaping for the writers
// in prof/report.cpp, and a small recursive-descent parser used by tests to
// validate the schema of emitted trace/metrics files. Deliberately tiny —
// no external dependency, no streaming, documents must fit in memory.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace kestrel::prof::json {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

/// Parsed JSON value. Objects keep insertion-order-independent (sorted)
/// member access via std::map; numbers are always double.
class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_bool() const { return kind == Kind::Bool; }
  bool is_number() const { return kind == Kind::Number; }
  bool is_string() const { return kind == Kind::String; }
  bool is_array() const { return kind == Kind::Array; }
  bool is_object() const { return kind == Kind::Object; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
};

/// Parses a full JSON document; throws kestrel::Error on malformed input
/// or trailing garbage.
Value parse(const std::string& text);

}  // namespace kestrel::prof::json
