// Scalar Talon SpMV reference. Walks panels, blocks and mask bits in the
// same (block, row, ascending-column) order as the packed value stream, so
// it doubles as the differential oracle for the vector tiers.

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon isa=scalar

namespace kestrel::mat::kernels {

namespace {

template <bool Add>
void talon_spmv_scalar_impl(const TalonView& a, const Scalar* x, Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    const Index row0 = a.panel_row[p];
    const Index r = a.panel_row[p + 1] - row0;
    const Scalar* v = a.val + a.panel_valptr[p];
    Scalar acc[4] = {};  // r <= 4 by construction
    for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
      const Index c0 = a.block_col[b];
      const std::uint32_t mask = a.block_mask[b];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        while (bits != 0) {
          acc[j] += *v++ * x[c0 + std::countr_zero(bits)];
          bits &= bits - 1;
        }
      }
    }
    for (Index j = 0; j < r; ++j) {
      if constexpr (Add) {
        y[row0 + j] += acc[j];
      } else {
        y[row0 + j] = acc[j];
      }
    }
  }
}

// argus-kernel: talon_spmv_scalar
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_scalar(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_scalar_impl<false>(a, x, y);
}
// argus-kernel: talon_spmv_add_scalar
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_add_scalar(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_scalar_impl<true>(a, x, y);
}

}  // namespace

void register_talon_scalar() {
  KESTREL_REGISTER_KERNEL(kTalonSpmv, kScalar, talon_spmv_scalar);
  KESTREL_REGISTER_KERNEL(kTalonSpmvAdd, kScalar, talon_spmv_add_scalar);
}

}  // namespace kestrel::mat::kernels
