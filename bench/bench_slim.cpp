// Kestrel Slim bench: the bytes-vs-Gflop/s ablation behind the compressed
// stream design. Sweeps every format over the storage grid
//   {fat, idx16, fp32, idx16+fp32}
// on a bandwidth-bound Gray-Scott Jacobian and reports the throughput of
// each cell next to its section-6 traffic model. The full-slim column is
// the CI gate: with both side streams on, the per-nonzero traffic halves
// (12 B -> 6 B for CSR/SELL), so on a memory-bound matrix at least two
// formats must clear a 1.3x speedup (slim_gate_count >= 2, asserted by
// scripts/check.sh and CI when slim_gate_eligible).
//
// Eligibility mirrors the other gated benches: the host must have the
// AVX-512 tier (the in-register vpmovzxwd / vcvtps2pd unpack the design is
// about) — without it the metrics are still exported, the gate is skipped.
//
// When Kestrel Pulse counters are available the bench also records the
// MEASURED DRAM bytes of every slim multiply against the slim traffic
// model, under the same [0.25, 4.0] wiring band bench_hwc applies to the
// fat formats.
//
//   ./bench_slim [--smoke] [--json BENCH_slim.json] [--min-time S]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "mat/talon.hpp"
#include "prof/hwc.hpp"
#include "prof/report.hpp"
#include "simd/isa.hpp"

namespace {

using namespace kestrel;

struct SlimConfig {
  const char* label;
  mat::SlimOptions opts;
};

std::shared_ptr<mat::Matrix> build_format(const std::string& name,
                                          const mat::Csr& csr) {
  const simd::IsaTier best = simd::detect_best_tier();
  std::shared_ptr<mat::Matrix> m;
  if (name == "csr") {
    m = std::make_shared<mat::Csr>(csr);
  } else if (name == "csrperm") {
    m = std::make_shared<mat::CsrPerm>(mat::Csr(csr));
  } else if (name == "sell") {
    m = std::make_shared<mat::Sell>(csr);
  } else if (name == "bcsr") {
    m = std::make_shared<mat::Bcsr>(csr, 2);  // Gray-Scott dof blocks
  } else {
    m = std::make_shared<mat::Talon>(csr);
  }
  m->set_tier(best);
  return m;
}

/// Square banded matrix with `2 * half + 1` nonzeros per interior row,
/// assembled directly in CSR form (no COO sort — at bench sizes that
/// dominates startup). Diagonally dominant so the fp32 shadow stays
/// well-conditioned.
mat::Csr banded_matrix(Index m, Index half) {
  std::vector<Index> rowptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;
  colidx.reserve(static_cast<std::size_t>(m) * (2 * half + 1));
  val.reserve(colidx.capacity());
  for (Index i = 0; i < m; ++i) {
    for (Index j = std::max(Index{0}, i - half);
         j <= std::min(m - 1, i + half); ++j) {
      colidx.push_back(j);
      val.push_back(i == j ? 4.0 * half : -1.0 / (1 + std::abs(i - j)));
    }
    rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(colidx.size());
  }
  return mat::Csr(m, m, std::move(rowptr), std::move(colidx),
                  std::move(val));
}

/// Best-of timing that keeps real repetitions under --smoke (the gate
/// matrix stays full size, so the metric must be a measurement, not a
/// wiring check — same reasoning as bench_threads' gate loop).
double time_gate(const mat::Matrix& a) {
  const int reps = bench::smoke_mode() ? 5 : 10;
  double secs = bench::smoke_mode() ? 0.1 : 0.3;
  if (bench::min_time() > secs) secs = bench::min_time();
  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  a.spmv(x.data(), y.data());  // warm up
  double best = 1e300, spent = 0.0;
  int k = 0;
  while (k < reps || spent < secs) {
    const double t0 = wall_time();
    a.spmv(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++k;
  }
  volatile double sink = y[0];
  (void)sink;
  return best;
}

/// Measured DRAM bytes per multiply (0 when counters are unavailable).
double measured_bytes(const mat::Matrix& a) {
  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  a.spmv(x.data(), y.data());  // warm up
  const int reps = 5;
  const prof::hwc::Reading r0 = prof::hwc::read_thread();
  for (int r = 0; r < reps; ++r) a.spmv(x.data(), y.data());
  const prof::hwc::Reading r1 = prof::hwc::read_thread();
  volatile double sink = y[0];
  (void)sink;
  const prof::hwc::Reading d = prof::hwc::delta(r0, r1);
  if (!d.valid) return 0.0;
  return static_cast<double>(d.dram_bytes) / reps;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::header(
      "Kestrel Slim: bytes-vs-Gflop/s ablation, format x index x scalar");

  const simd::IsaTier best = simd::detect_best_tier();
  const bool gate_eligible = best == simd::IsaTier::kAvx512;
  std::printf("isa tier: %s (gate %s)\n", simd::tier_name(best),
              gate_eligible ? "ELIGIBLE, needs >= 1.3x on >= 2 formats"
                            : "SKIPPED: slim unpack needs AVX-512");

  const bool hwc_on = prof::hwc::enable_if_capable();
  const prof::hwc::Source source = prof::hwc::source();
  const bool hwc_hw = hwc_on && (source == prof::hwc::Source::kLlcFallback ||
                                 source == prof::hwc::Source::kUncoreImc);
  if (hwc_on) {
    std::printf("hwc: source %s\n", prof::hwc::source_name(source));
  } else {
    std::printf("hwc: skipped: no PMU access (%s)\n",
                prof::hwc::capability().detail.c_str());
  }

  // The gate needs a memory-bound matrix, so the size is NOT --smoke
  // scaled (a cache-resident matrix would measure the unpack ALU cost, not
  // the traffic win the design buys). Smoke only trims the repetitions.
  //
  // The matrix is a plain banded operator rather than the Gray-Scott
  // Jacobian: the paper's grid is periodic, and periodic wrap rows span
  // the whole matrix width, so the all-or-nothing idx16 attach correctly
  // declines there (tests/slim_test.cpp pins that behavior). A band is the
  // shape slim exists for — every row's column span fits 16 bits.
  const Index rows = 480000;
  const Index half = 8;  // 17 nonzeros per row
  const mat::Csr csr = banded_matrix(rows, half);
  std::printf("matrix: %d rows, %lld nnz (banded, halfwidth %d)\n\n",
              csr.rows(), static_cast<long long>(csr.nnz()), half);

  const SlimConfig configs[] = {
      {"fat", {false, false}},
      {"idx16", {true, false}},
      {"fp32", {false, true}},
      {"slim", {true, true}},  // idx16 + fp32 — the gated column
  };
  const char* formats[] = {"csr", "csrperm", "sell", "bcsr", "talon"};

  prof::Profiler log;
  log.set_metric("matrix_rows", static_cast<double>(csr.rows()));
  log.set_metric("matrix_nnz", static_cast<double>(csr.nnz()));
  log.set_metric("slim_gate_eligible", gate_eligible ? 1.0 : 0.0);

  int gate_count = 0;
  bool band_failed = false;
  std::printf("%-8s", "format");
  for (const SlimConfig& c : configs) std::printf(" %9s[GF/s]", c.label);
  std::printf("  speedup  model B/mult (fat->slim)\n");
  for (const char* fmt : formats) {
    std::printf("%-8s", fmt);
    double fat_gf = 0.0, slim_gf = 0.0;
    std::size_t fat_bytes = 0, slim_bytes = 0;
    for (const SlimConfig& c : configs) {
      auto m = build_format(fmt, csr);
      const bool ok = m->set_slim(c.opts);
      // Declined attach (16-bit span overflow) falls back to fat storage;
      // record the cell as ineligible rather than timing fat twice.
      const double t = time_gate(*m);
      const double gf = bench::gflops(*m, t);
      std::printf(" %15.2f", gf);
      const std::string key = std::string("slim/") + fmt + "/" + c.label;
      log.set_metric(key + "_gflops", gf);
      log.set_metric(key + "_eligible", ok ? 1.0 : 0.0);
      if (c.opts.idx16 && c.opts.fp32) {
        slim_gf = ok ? gf : 0.0;
        slim_bytes = m->spmv_traffic_bytes();
        if (hwc_hw && ok && !bench::smoke_mode()) {
          const double meas = measured_bytes(*m);
          const double ratio =
              meas / static_cast<double>(m->spmv_traffic_bytes());
          log.set_metric(key + "_bytes_ratio", ratio);
          if (ratio < 0.25 || ratio > 4.0) {
            std::printf("\nBAND FAILED: %s slim measured/model = %.3f "
                        "outside [0.25, 4.0]\n",
                        fmt, ratio);
            band_failed = true;
          }
        }
      } else if (!c.opts.any()) {
        fat_gf = gf;
        fat_bytes = m->spmv_traffic_bytes();
      }
    }
    const double speedup = fat_gf > 0.0 ? slim_gf / fat_gf : 0.0;
    if (speedup >= 1.3) ++gate_count;
    log.set_metric(std::string("slim/") + fmt + "/speedup", speedup);
    std::printf("  %6.2fx  %zu -> %zu\n", speedup, fat_bytes, slim_bytes);
  }

  log.set_metric("slim_gate_count", static_cast<double>(gate_count));
  std::printf("\n%d format(s) at >= 1.3x full-slim speedup (gate %s: "
              "needs >= 2)\n",
              gate_count, gate_eligible ? "eligible" : "skipped");

  if (!bench::json_path().empty()) {
    std::ofstream out(bench::json_path());
    if (!out.good()) {
      std::fprintf(stderr, "bench_slim: cannot open %s\n",
                   bench::json_path().c_str());
      return 1;
    }
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("metrics written to %s\n", bench::json_path().c_str());
  }
  return band_failed ? 1 : 0;
}
