#include "aegis/abft.hpp"

#include <cmath>
#include <utility>

#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "prof/profiler.hpp"
#include "simd/isa.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#define KESTREL_ABFT_X86 1
#include <immintrin.h>
#endif

namespace kestrel::aegis {

namespace {

// The two verification reductions: s = Σ cᵢxᵢ (resp. Σ yᵢ) together with
// the absolute sum that sets the rounding scale. Unlike the SpMV kernels
// these are too small to earn their own per-tier translation units, so the
// vector variants use GCC/Clang target attributes in this one TU and are
// picked at runtime from the same tier ladder (simd::detect_best_tier).
using DotAbsFn = void (*)(const Scalar*, const Scalar*, Index, Scalar*,
                          Scalar*);
using SumAbsFn = void (*)(const Scalar*, Index, Scalar*, Scalar*);

void dot_abs_scalar(const Scalar* c, const Scalar* x, Index n, Scalar* s,
                    Scalar* abs_s) {
  // Four independent accumulators break the FP-add latency chain.
  Scalar s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  Scalar a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  Index j = 0;
  for (; j + 4 <= n; j += 4) {
    const Scalar t0 = c[j] * x[j];
    const Scalar t1 = c[j + 1] * x[j + 1];
    const Scalar t2 = c[j + 2] * x[j + 2];
    const Scalar t3 = c[j + 3] * x[j + 3];
    s0 += t0;
    s1 += t1;
    s2 += t2;
    s3 += t3;
    a0 += std::abs(t0);
    a1 += std::abs(t1);
    a2 += std::abs(t2);
    a3 += std::abs(t3);
  }
  for (; j < n; ++j) {
    const Scalar t = c[j] * x[j];
    s0 += t;
    a0 += std::abs(t);
  }
  *s = (s0 + s1) + (s2 + s3);
  *abs_s = (a0 + a1) + (a2 + a3);
}

void sum_abs_scalar(const Scalar* y, Index n, Scalar* s, Scalar* abs_s) {
  Scalar s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  Scalar a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    s0 += y[i];
    s1 += y[i + 1];
    s2 += y[i + 2];
    s3 += y[i + 3];
    a0 += std::abs(y[i]);
    a1 += std::abs(y[i + 1]);
    a2 += std::abs(y[i + 2]);
    a3 += std::abs(y[i + 3]);
  }
  for (; i < n; ++i) {
    s0 += y[i];
    a0 += std::abs(y[i]);
  }
  *s = (s0 + s1) + (s2 + s3);
  *abs_s = (a0 + a1) + (a2 + a3);
}

#if defined(KESTREL_ABFT_X86)

__attribute__((target("avx2,fma"))) void dot_abs_avx2(const Scalar* c,
                                                      const Scalar* x,
                                                      Index n, Scalar* s,
                                                      Scalar* abs_s) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  Index j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256d t0 =
        _mm256_mul_pd(_mm256_loadu_pd(c + j), _mm256_loadu_pd(x + j));
    const __m256d t1 =
        _mm256_mul_pd(_mm256_loadu_pd(c + j + 4), _mm256_loadu_pd(x + j + 4));
    s0 = _mm256_add_pd(s0, t0);
    s1 = _mm256_add_pd(s1, t1);
    a0 = _mm256_add_pd(a0, _mm256_andnot_pd(sign, t0));
    a1 = _mm256_add_pd(a1, _mm256_andnot_pd(sign, t1));
  }
  alignas(32) Scalar lanes[4];
  // kestrel-aligned: lanes is a local alignas(32) spill buffer
  _mm256_store_pd(lanes, _mm256_add_pd(s0, s1));
  Scalar sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  // kestrel-aligned: same alignas(32) buffer
  _mm256_store_pd(lanes, _mm256_add_pd(a0, a1));
  Scalar abs_sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; j < n; ++j) {
    const Scalar t = c[j] * x[j];
    sum += t;
    abs_sum += std::abs(t);
  }
  *s = sum;
  *abs_s = abs_sum;
}

__attribute__((target("avx2,fma"))) void sum_abs_avx2(const Scalar* y,
                                                      Index n, Scalar* s,
                                                      Scalar* abs_s) {
  const __m256d sign = _mm256_set1_pd(-0.0);
  __m256d s0 = _mm256_setzero_pd(), s1 = _mm256_setzero_pd();
  __m256d a0 = _mm256_setzero_pd(), a1 = _mm256_setzero_pd();
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d t0 = _mm256_loadu_pd(y + i);
    const __m256d t1 = _mm256_loadu_pd(y + i + 4);
    s0 = _mm256_add_pd(s0, t0);
    s1 = _mm256_add_pd(s1, t1);
    a0 = _mm256_add_pd(a0, _mm256_andnot_pd(sign, t0));
    a1 = _mm256_add_pd(a1, _mm256_andnot_pd(sign, t1));
  }
  alignas(32) Scalar lanes[4];
  // kestrel-aligned: lanes is a local alignas(32) spill buffer
  _mm256_store_pd(lanes, _mm256_add_pd(s0, s1));
  Scalar sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  // kestrel-aligned: same alignas(32) buffer
  _mm256_store_pd(lanes, _mm256_add_pd(a0, a1));
  Scalar abs_sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    sum += y[i];
    abs_sum += std::abs(y[i]);
  }
  *s = sum;
  *abs_s = abs_sum;
}

__attribute__((target("avx512f"))) void dot_abs_avx512(const Scalar* c,
                                                       const Scalar* x,
                                                       Index n, Scalar* s,
                                                       Scalar* abs_s) {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  Index j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512d t0 =
        _mm512_mul_pd(_mm512_loadu_pd(c + j), _mm512_loadu_pd(x + j));
    const __m512d t1 =
        _mm512_mul_pd(_mm512_loadu_pd(c + j + 8), _mm512_loadu_pd(x + j + 8));
    s0 = _mm512_add_pd(s0, t0);
    s1 = _mm512_add_pd(s1, t1);
    a0 = _mm512_add_pd(a0, _mm512_abs_pd(t0));
    a1 = _mm512_add_pd(a1, _mm512_abs_pd(t1));
  }
  Scalar sum = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
  Scalar abs_sum = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  for (; j < n; ++j) {
    const Scalar t = c[j] * x[j];
    sum += t;
    abs_sum += std::abs(t);
  }
  *s = sum;
  *abs_s = abs_sum;
}

__attribute__((target("avx512f"))) void sum_abs_avx512(const Scalar* y,
                                                       Index n, Scalar* s,
                                                       Scalar* abs_s) {
  __m512d s0 = _mm512_setzero_pd(), s1 = _mm512_setzero_pd();
  __m512d a0 = _mm512_setzero_pd(), a1 = _mm512_setzero_pd();
  Index i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512d t0 = _mm512_loadu_pd(y + i);
    const __m512d t1 = _mm512_loadu_pd(y + i + 8);
    s0 = _mm512_add_pd(s0, t0);
    s1 = _mm512_add_pd(s1, t1);
    a0 = _mm512_add_pd(a0, _mm512_abs_pd(t0));
    a1 = _mm512_add_pd(a1, _mm512_abs_pd(t1));
  }
  Scalar sum = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
  Scalar abs_sum = _mm512_reduce_add_pd(_mm512_add_pd(a0, a1));
  for (; i < n; ++i) {
    sum += y[i];
    abs_sum += std::abs(y[i]);
  }
  *s = sum;
  *abs_s = abs_sum;
}

#endif  // KESTREL_ABFT_X86

DotAbsFn pick_dot_abs() {
#if defined(KESTREL_ABFT_X86)
  const simd::IsaTier best = simd::detect_best_tier();
  if (best >= simd::IsaTier::kAvx512) return dot_abs_avx512;
  if (best >= simd::IsaTier::kAvx2) return dot_abs_avx2;
#endif
  return dot_abs_scalar;
}

SumAbsFn pick_sum_abs() {
#if defined(KESTREL_ABFT_X86)
  const simd::IsaTier best = simd::detect_best_tier();
  if (best >= simd::IsaTier::kAvx512) return sum_abs_avx512;
  if (best >= simd::IsaTier::kAvx2) return sum_abs_avx2;
#endif
  return sum_abs_scalar;
}

}  // namespace

void dot_abs(const Scalar* c, const Scalar* x, Index n, Scalar* s,
             Scalar* abs_s) {
  static const DotAbsFn fn = pick_dot_abs();
  fn(c, x, n, s, abs_s);
}

void sum_abs(const Scalar* y, Index n, Scalar* s, Scalar* abs_s) {
  static const SumAbsFn fn = pick_sum_abs();
  fn(y, n, s, abs_s);
}

AbftMatrix::AbftMatrix(mat::MatrixPtr inner, AbftOptions opts)
    : inner_(std::move(inner)), opts_(opts) {
  KESTREL_CHECK(inner_ != nullptr, "abft: null inner matrix");
  KESTREL_CHECK(opts_.tol > 0.0, "abft: tolerance must be positive");
  KESTREL_CHECK(opts_.max_retries >= 0, "abft: negative retry budget");
  KESTREL_CHECK(opts_.verify_every >= 1, "abft: verify_every must be >= 1");
  inner_->abft_col_checksum(colsum_);
  tier_ = inner_->tier();
}

std::size_t AbftMatrix::storage_bytes() const {
  return inner_->storage_bytes() +
         static_cast<std::size_t>(colsum_.size()) * sizeof(Scalar);
}

bool AbftMatrix::verify(const Vector& colsum, const Scalar* x,
                        const Scalar* y, Index ylen, Scalar tol,
                        Scalar* drift_out) {
  // One fused pass per operand: cx = c·x with a running absolute sum for
  // the rounding scale, likewise for Σy. The reductions are tier-dispatched
  // (see above) — an O(n) scalar pass next to a vectorized O(nnz) multiply
  // is what would blow the <10% overhead budget.
  Scalar cx = 0.0, cx_abs = 0.0;
  dot_abs(colsum.data(), x, colsum.size(), &cx, &cx_abs);
  Scalar ysum = 0.0, ysum_abs = 0.0;
  sum_abs(y, ylen, &ysum, &ysum_abs);
  const Scalar drift = std::abs(cx - ysum);
  if (drift_out != nullptr) *drift_out = drift;
  if (std::isnan(drift)) return false;
  const Scalar scale = cx_abs + ysum_abs + 1.0;
  return drift <= tol * scale;
}

Scalar AbftMatrix::effective_tol() const {
  // fp32 rounding (eps ~ 1.2e-7) accumulated over a row sits well above
  // the default 1e-8 double band; 4e-5 keeps exponent/high-mantissa flips
  // detectable while never tripping on healthy slim multiplies.
  return inner_->slim_active() ? std::max(opts_.tol, Scalar{4e-5})
                               : opts_.tol;
}

void AbftMatrix::spmv(const Scalar* x, Scalar* y) const {
  AegisStats& st = stats();
  inner_->spmv(x, y);
  // verify_every sampling: unchecked multiplies return immediately (a
  // pending injected fault still forces verification so tests never race
  // the sample phase).
  if (opts_.verify_every > 1 && !inject_once_ &&
      (calls_++ % static_cast<std::uint64_t>(opts_.verify_every)) != 0) {
    return;
  }
  if (inject_once_) {
    // Transient-fault injection point: fires once, between the multiply
    // and its verification, exactly where a soft error would land.
    auto f = std::move(inject_once_);
    inject_once_ = nullptr;
    f(y, rows());
  }
  Scalar drift = 0.0;
  bool ok;
  {
    KESTREL_PROF_SPMV("AbftVerify",
                      2 * (cols() + rows()),
                      sizeof(Scalar) *
                          static_cast<std::size_t>(2 * cols() + rows()));
    st.abft_verifications++;
    ok = verify(colsum_, x, y, rows(), effective_tol(), &drift);
  }
  if (ok) return;
  st.abft_failures++;
  for (int attempt = 0; attempt < opts_.max_retries; ++attempt) {
    st.abft_retries++;
    inner_->spmv(x, y);
    st.abft_verifications++;
    if (verify(colsum_, x, y, rows(), effective_tol(), &drift)) {
      st.recoveries++;
      return;
    }
  }
  throw AbftError(inner_->format_name(), drift,
                  "checksum invariant c.x == sum(y) still violated after " +
                      std::to_string(opts_.max_retries) +
                      " recompute retries (persistent corruption in the "
                      "matrix values, x, or y)",
                  __FILE__, __LINE__);
}

}  // namespace kestrel::aegis
