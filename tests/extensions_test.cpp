// Tests for the extension features: level-scheduled ILU(0) (the paper's
// future-work item), flexible GMRES, pattern-reuse value refresh (CSR and
// SELL), transpose SpMV, and the blocked AVX2 BAIJ kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "app/gray_scott.hpp"
#include "app/laplacian.hpp"
#include "ksp/context.hpp"
#include "mat/bcsr.hpp"
#include "mat/sell.hpp"
#include "mat/spgemm.hpp"
#include "pc/ilu0.hpp"
#include "pc/ilu0_level.hpp"
#include "pc/jacobi.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

// ---- level-scheduled ILU(0) ------------------------------------------

TEST(Ilu0Level, MatchesSequentialIlu0Exactly) {
  for (auto make : {+[] { return app::laplacian_dirichlet(12, 12); },
                    +[] { return testing::banded(80, {-7, -1, 1, 7}); },
                    +[] { return testing::uniform_random(60, 60, 5, 17); }}) {
    mat::Csr a = make();
    // ensure a structural diagonal everywhere
    a = mat::add(1.0, a, 10.0, mat::identity(a.rows()));
    const pc::Ilu0 seq(a);
    const pc::Ilu0Level lvl(a);
    Vector r(a.rows());
    for (Index i = 0; i < r.size(); ++i) r[i] = std::sin(0.3 * i);
    Vector z1, z2;
    seq.apply(r, z1);
    lvl.apply(r, z2);
    for (Index i = 0; i < r.size(); ++i) {
      EXPECT_NEAR(z1[i], z2[i], 1e-12) << "row " << i;
    }
  }
}

TEST(Ilu0Level, LevelsAreTrulyIndependent) {
  // No row in a level may reference (in its strictly-lower part) another
  // row of the same or a later level.
  const mat::Csr a = app::laplacian_dirichlet(10, 10);
  const pc::Ilu0Level lvl(a);
  std::vector<int> level_of(static_cast<std::size_t>(a.rows()), -1);
  for (int l = 0; l < lvl.num_lower_levels(); ++l) {
    for (Index row : lvl.lower_level(l)) {
      level_of[static_cast<std::size_t>(row)] = l;
    }
  }
  for (int l = 0; l < lvl.num_lower_levels(); ++l) {
    for (Index row : lvl.lower_level(l)) {
      for (Index j : lvl.factors().row_cols(row)) {
        if (j >= row) break;
        EXPECT_LT(level_of[static_cast<std::size_t>(j)], l);
      }
    }
  }
}

TEST(Ilu0Level, LevelsPartitionAllRows) {
  const mat::Csr a = testing::banded(45, {-2, 2}, 9);
  const pc::Ilu0Level lvl(a);
  std::set<Index> seen;
  for (int l = 0; l < lvl.num_lower_levels(); ++l) {
    for (Index row : lvl.lower_level(l)) {
      EXPECT_TRUE(seen.insert(row).second) << "duplicate row " << row;
    }
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), a.rows());
}

TEST(Ilu0Level, DiagonalMatrixIsOneLevel) {
  const mat::Csr a = mat::identity(20);
  const pc::Ilu0Level lvl(a);
  EXPECT_EQ(lvl.num_lower_levels(), 1);
  EXPECT_EQ(lvl.num_upper_levels(), 1);
}

TEST(Ilu0Level, TridiagonalIsFullySequential) {
  // a tridiagonal chain has no across-row parallelism: n levels
  const mat::Csr a = testing::banded(16, {-1, 1}, 4);
  const pc::Ilu0Level lvl(a);
  EXPECT_EQ(lvl.num_lower_levels(), 16);
}

TEST(Ilu0Level, GrayScottJacobianHasFewLevels) {
  // 5-point stencils level-schedule like wavefronts: O(nx + ny) levels for
  // O(nx * ny) rows — lots of exposed parallelism.
  app::GrayScott gs(12);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  const pc::Ilu0Level lvl(jac);
  EXPECT_LT(lvl.num_lower_levels(), jac.rows() / 4);
}

TEST(Ilu0Level, AcceleratesGmresLikeIlu0) {
  const mat::Csr a = app::laplacian_dirichlet(16, 16);
  const Vector b(a.rows(), 1.0);
  ksp::Settings settings;
  settings.rtol = 1e-8;
  const ksp::Gmres gmres(settings);

  Vector x1(a.rows()), x2(a.rows());
  const pc::Ilu0 seq(a);
  const pc::Ilu0Level lvl(a);
  ksp::SeqContext c1(a, &seq), c2(a, &lvl);
  const auto r1 = gmres.solve(c1, b, x1);
  const auto r2 = gmres.solve(c2, b, x2);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_EQ(r1.iterations, r2.iterations);  // identical preconditioner
}

// ---- FGMRES ------------------------------------------------------------

TEST(FGmres, SolvesNonsymmetricSystem) {
  const mat::Csr a = testing::banded(64, {-3, 1, 5}, 21);
  Vector x_true(64);
  for (Index i = 0; i < 64; ++i) x_true[i] = std::cos(0.2 * i);
  Vector b;
  a.spmv(x_true, b);
  Vector x(64);
  ksp::Settings settings;
  settings.rtol = 1e-12;
  settings.max_iterations = 500;
  const ksp::FGmres solver(settings);
  ksp::SeqContext ctx(a);
  const auto res = solver.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < 64; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(FGmres, ToleratesIterationVaryingPreconditioner) {
  // A preconditioner whose scaling changes every apply: plain GMRES theory
  // breaks, flexible GMRES must still converge.
  class Wobbly final : public pc::Pc {
   public:
    explicit Wobbly(const mat::Matrix& a) : jacobi_(a) {}
    void apply(const Vector& r, Vector& z) const override {
      jacobi_.apply(r, z);
      z.scale(1.0 + 0.5 * ((calls_++) % 3));  // 1x, 1.5x, 2x, ...
    }
    std::string name() const override { return "wobbly"; }

   private:
    pc::Jacobi jacobi_;
    mutable int calls_ = 0;
  };

  const mat::Csr a = app::laplacian_dirichlet(10, 10);
  const Vector b(a.rows(), 1.0);
  Vector x(a.rows());
  const Wobbly pc(a);
  ksp::Settings settings;
  settings.rtol = 1e-8;
  settings.max_iterations = 600;
  const ksp::FGmres solver(settings);
  ksp::SeqContext ctx(a, &pc);
  const auto res = solver.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  // verify the actual residual, not just the solver's claim
  Vector check;
  a.spmv(x, check);
  check.aypx(-1.0, b);
  EXPECT_LT(check.norm2(), 1e-6);
}

TEST(FGmres, AvailableFromFactory) {
  EXPECT_EQ(ksp::make_solver("fgmres")->name(), "fgmres");
}

// ---- structure-reuse value refresh --------------------------------------

TEST(ValueRefresh, SellCopyValuesFrom) {
  app::GrayScott gs(8);
  Vector u0;
  gs.initial_condition(u0);
  const mat::Csr jac0 = gs.rhs_jacobian(u0);
  mat::Sell sell(jac0);

  // advance the state; same pattern, different values
  Vector u1 = u0;
  for (Index i = 0; i < u1.size(); ++i) u1[i] *= 0.9;
  const mat::Csr jac1 = gs.rhs_jacobian(u1);
  sell.copy_values_from(jac1);

  // refreshed SELL must multiply like the new CSR
  Vector x(jac1.cols(), 1.0), y1, y2;
  jac1.spmv(x, y1);
  sell.spmv(x, y2);
  for (Index i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(ValueRefresh, SellRejectsPatternChange) {
  const mat::Csr a = testing::banded(20, {-1, 1}, 2);
  const mat::Csr b = testing::banded(20, {-2, 2}, 2);
  mat::Sell sell(a);
  EXPECT_THROW(sell.copy_values_from(b), Error);
}

TEST(ValueRefresh, CsrCopyValuesFrom) {
  const mat::Csr a = testing::banded(15, {-1, 1}, 5);
  mat::Csr b = a;
  mat::Csr a2 = testing::banded(15, {-1, 1}, 6);  // same pattern, new values
  b.copy_values_from(a2);
  for (Index i = 0; i < 15; ++i) {
    for (Index j : a2.row_cols(i)) {
      EXPECT_DOUBLE_EQ(b.at(i, j), a2.at(i, j));
    }
  }
}

// ---- transpose SpMV ------------------------------------------------------

TEST(TransposeSpmv, MatchesExplicitTranspose) {
  const mat::Csr a = testing::uniform_random(22, 17, 4, 31);
  const mat::Csr at = a.transpose();
  const auto x = testing::random_x(22, 3);
  Vector y1(17), y2(17);
  a.spmv_transpose(x.data(), y1.data());
  at.spmv(x.data(), y2.data());
  for (Index j = 0; j < 17; ++j) EXPECT_NEAR(y1[j], y2[j], 1e-12);
}

TEST(TransposeSpmv, ZeroInputShortCircuits) {
  const mat::Csr a = testing::banded(10, {-1, 1});
  Vector x(10, 0.0), y(10, 99.0);
  a.spmv_transpose(x.data(), y.data());
  for (Index j = 0; j < 10; ++j) EXPECT_DOUBLE_EQ(y[j], 0.0);
}

// ---- blocked BAIJ AVX2 kernel --------------------------------------------

TEST(BcsrAvx2, MatchesScalarKernelOnBlocks) {
  if (!simd::cpu_supports(simd::IsaTier::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  app::GrayScott gs(10);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  mat::Bcsr scalar_b(jac, 2);
  scalar_b.set_tier(simd::IsaTier::kScalar);
  mat::Bcsr avx2_b(jac, 2);
  avx2_b.set_tier(simd::IsaTier::kAvx2);

  const auto x = testing::random_x(jac.cols(), 41);
  Vector xv(jac.cols());
  for (Index i = 0; i < xv.size(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector y1, y2;
  scalar_b.spmv(xv, y1);
  avx2_b.spmv(xv, y2);
  for (Index i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(BcsrAvx2, GenericBlockSizesStillWork) {
  if (!simd::cpu_supports(simd::IsaTier::kAvx2)) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  const Index bs = 3;
  mat::Coo coo(bs * 5, bs * 5);
  Rng rng(8);
  for (Index i = 0; i < bs * 5; ++i) {
    coo.add(i, i, 2.0);
    coo.add(i, (i + bs) % (bs * 5), rng.uniform(-1.0, 1.0));
  }
  const mat::Csr csr = coo.to_csr();
  mat::Bcsr b(csr, bs);
  b.set_tier(simd::IsaTier::kAvx2);
  const auto x = testing::random_x(csr.cols(), 4);
  const auto expect = testing::dense_spmv(csr, x);
  Vector xv(csr.cols()), y;
  for (Index i = 0; i < xv.size(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  b.spmv(xv, y);
  for (Index i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], expect[static_cast<std::size_t>(i)], 1e-12);
  }
}

}  // namespace
}  // namespace kestrel
