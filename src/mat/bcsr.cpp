#include "mat/bcsr.hpp"

#include <map>

#include "base/error.hpp"
#include "mat/csr.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

Bcsr::Bcsr(const Csr& csr, Index bs) : bs_(bs), nnz_(csr.nnz()) {
  KESTREL_CHECK(bs >= 1, "block size must be positive");
  KESTREL_CHECK(csr.rows() % bs == 0 && csr.cols() % bs == 0,
                "matrix dimensions must be divisible by the block size");
  mb_ = csr.rows() / bs;
  nb_ = csr.cols() / bs;

  // Pass 1: which block columns are occupied per block row.
  std::vector<Index> rowptr(static_cast<std::size_t>(mb_) + 1, 0);
  std::vector<std::vector<Index>> bcols(static_cast<std::size_t>(mb_));
  for (Index ib = 0; ib < mb_; ++ib) {
    std::map<Index, bool> seen;
    for (Index r = 0; r < bs; ++r) {
      for (Index c : csr.row_cols(ib * bs + r)) seen[c / bs] = true;
    }
    auto& cols = bcols[static_cast<std::size_t>(ib)];
    cols.reserve(seen.size());
    for (const auto& [jb, _] : seen) cols.push_back(jb);
    rowptr[static_cast<std::size_t>(ib) + 1] =
        rowptr[static_cast<std::size_t>(ib)] +
        static_cast<Index>(cols.size());
  }

  const std::size_t nblocks =
      static_cast<std::size_t>(rowptr[static_cast<std::size_t>(mb_)]);
  rowptr_.resize(rowptr.size());
  std::copy(rowptr.begin(), rowptr.end(), rowptr_.begin());
  colidx_.resize(nblocks);
  val_.resize(nblocks * static_cast<std::size_t>(bs) * bs);
  val_.fill(0.0);

  // Pass 2: fill values.
  for (Index ib = 0; ib < mb_; ++ib) {
    const auto& cols = bcols[static_cast<std::size_t>(ib)];
    const Index base = rowptr_[static_cast<std::size_t>(ib)];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      colidx_[static_cast<std::size_t>(base) + k] = cols[k];
    }
    for (Index r = 0; r < bs; ++r) {
      const Index row = ib * bs + r;
      const auto rc = csr.row_cols(row);
      const auto rv = csr.row_vals(row);
      for (std::size_t e = 0; e < rc.size(); ++e) {
        const Index jb = rc[e] / bs;
        // binary search for jb within this block row
        const auto it = std::lower_bound(cols.begin(), cols.end(), jb);
        const Index slot = base + static_cast<Index>(it - cols.begin());
        Scalar* blk = val_.data() +
                      static_cast<std::size_t>(slot) * bs * bs;
        blk[r * bs + (rc[e] % bs)] = rv[e];
      }
    }
  }
  repartition(par::configured_threads());
}

void Bcsr::repartition(int nparts) {
  // Weight each block row by its stored scalars; bs^2 is a common factor,
  // so the block-count prefix (rowptr) balances identically.
  part_ = nnz_balance(rowptr_.data(), mb_, nparts);
}

void Bcsr::spmv(const Scalar* x, Scalar* y) const {
  if (slim_.active()) {
    spmv_slim(x, y);
    return;
  }
  spmv_fat(x, y);
}

void Bcsr::spmv_wide(const Scalar* x, Scalar* y) const { spmv_fat(x, y); }

void Bcsr::spmv_fat(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(bcsr)", 2 * nnz(), fat_spmv_traffic_bytes());
  auto fn = simd::lookup_as<simd::BcsrSpmvFn>(simd::Op::kBcsrSpmv, tier_);
  if (part_.nparts() <= 1) {
    fn(view(), x, y);
    return;
  }
  // Flock: contiguous block-row ranges through offset sub-views. rowptr
  // values are absolute block indices into colidx/val, so only the rowptr
  // pointer and y (by whole blocks) shift.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index b0 = part_.begin(p);
    const Index b1 = part_.end(p);
    if (b0 == b1) return;
    const BcsrView sub{b1 - b0, nb_, bs_, rowptr_.data() + b0,
                       colidx_.data(), val_.data()};
    fn(sub, x, y + b0 * bs_);
  });
}

void Bcsr::spmv_slim(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(bcsr_slim)", 2 * nnz(), spmv_traffic_bytes());
  auto fn =
      simd::lookup_as<simd::BcsrSlimSpmvFn>(simd::Op::kBcsrSlimSpmv, tier_);
  const BcsrSlimView v = slim_view();
  if (part_.nparts() <= 1) {
    fn(v, x, y);
    return;
  }
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index b0 = part_.begin(p);
    const Index b1 = part_.end(p);
    if (b0 == b1) return;
    BcsrSlimView sub = v;
    sub.mb = b1 - b0;
    sub.rowptr = v.rowptr + b0;
    if (v.base != nullptr) sub.base = v.base + b0;
    fn(sub, x, y + b0 * bs_);
  });
}

BcsrSlimView Bcsr::slim_view() const {
  return {mb_,
          nb_,
          bs_,
          slim_.idx16() ? Index{1} : Index{0},
          slim_.fp32() ? Index{1} : Index{0},
          rowptr_.data(),
          colidx_.data(),
          val_.data(),
          slim_.idx16() ? slim_.base() : nullptr,
          slim_.idx16() ? slim_.off16() : nullptr,
          slim_.fp32() ? slim_.val32() : nullptr};
}

bool Bcsr::set_slim(const SlimOptions& opts) {
  // scale = bs: base/off16 are stored in scalar column units so the kernel
  // indexes x without a per-block multiply; bs * (block column span) must
  // fit 16 bits.
  return slim_.attach(opts, rowptr_.data(), mb_, colidx_.data(), val_.data(),
                      val_.size(), bs_);
}

void Bcsr::get_diagonal(Vector& d) const {
  KESTREL_CHECK(mb_ == nb_, "get_diagonal requires a square matrix");
  d.resize(rows());
  d.set(0.0);
  for (Index ib = 0; ib < mb_; ++ib) {
    for (Index k = rowptr_[ib]; k < rowptr_[ib + 1]; ++k) {
      if (colidx_[k] == ib) {
        const Scalar* blk =
            val_.data() + static_cast<std::size_t>(k) * bs_ * bs_;
        for (Index r = 0; r < bs_; ++r) d[ib * bs_ + r] = blk[r * bs_ + r];
      }
    }
  }
}

void Bcsr::abft_col_checksum(Vector& c) const {
  c.resize(cols());
  c.set(0.0);
  for (Index ib = 0; ib < mb_; ++ib) {
    for (Index k = rowptr_[ib]; k < rowptr_[ib + 1]; ++k) {
      const Index jb = colidx_[k];
      const Scalar* blk =
          val_.data() + static_cast<std::size_t>(k) * bs_ * bs_;
      for (Index r = 0; r < bs_; ++r) {
        for (Index cc = 0; cc < bs_; ++cc) {
          c[jb * bs_ + cc] += blk[r * bs_ + cc];
        }
      }
    }
  }
}

std::size_t Bcsr::storage_bytes() const {
  return rowptr_.size() * sizeof(Index) + colidx_.size() * sizeof(Index) +
         val_.size() * sizeof(Scalar);
}

// argus-traffic-model: bcsr
// argus-traffic-stream: val = 8 * nblocks * bs * bs
// argus-traffic-stream: colidx = 4 * nblocks
// argus-traffic-stream: rowptr = 4 * mb + 4
// argus-traffic-stream: y = 8 * mb * bs : wa
// argus-traffic-stream: x = 8 * nb * bs
// argus-traffic-bind: val_.size() = nblocks * bs * bs
// argus-traffic-bind: colidx_.size() = nblocks
// argus-traffic-bind: rowptr_.size() = mb + 1
// argus-traffic-bind: sizeof(Scalar) = 8
// argus-traffic-bind: sizeof(Index) = 4
// argus-traffic-bind: rows() = mb * bs
// argus-traffic-bind: cols() = nb * bs
// argus-traffic-cpp: fat_spmv_traffic_bytes
std::size_t Bcsr::fat_spmv_traffic_bytes() const {
  // 8 bytes per stored scalar + 4 bytes per block column index + rowptr +
  // x and y.
  return val_.size() * sizeof(Scalar) + colidx_.size() * sizeof(Index) +
         rowptr_.size() * sizeof(Index) +
         8 * static_cast<std::size_t>(rows() + cols());
}

// Kestrel Slim traffic: fp32 halves the dominant block-value stream, the
// 16-bit offsets halve the per-block index stream, and each block row adds
// one 4-byte base column; the fat colidx/val streams are not touched (`alt`).
// argus-traffic-model: bcsr_slim
// argus-traffic-stream: val32 = 4 * nblocks * bs * bs : esize 4
// argus-traffic-stream: off16 = 2 * nblocks : esize 2
// argus-traffic-stream: base = 4 * mb
// argus-traffic-stream: rowptr = 4 * mb + 4
// argus-traffic-stream: y = 8 * mb * bs : wa
// argus-traffic-stream: x = 8 * nb * bs
// argus-traffic-stream: colidx = 0 : alt
// argus-traffic-stream: val = 0 : alt
// argus-traffic-bind: val_.size() = nblocks * bs * bs
// argus-traffic-bind: colidx_.size() = nblocks
// argus-traffic-bind: rowptr_.size() = mb + 1
// argus-traffic-bind: mb_ = mb
// argus-traffic-bind: sizeof(Index) = 4
// argus-traffic-bind: rows() = mb * bs
// argus-traffic-bind: cols() = nb * bs
// argus-traffic-cpp: slim_spmv_traffic_bytes
std::size_t Bcsr::slim_spmv_traffic_bytes() const {
  return 4 * val_.size() + 2 * colidx_.size() +
         4 * static_cast<std::size_t>(mb_) + rowptr_.size() * sizeof(Index) +
         8 * static_cast<std::size_t>(rows() + cols());
}

std::size_t Bcsr::spmv_traffic_bytes() const {
  if (!slim_.active()) return fat_spmv_traffic_bytes();
  if (slim_.idx16() && slim_.fp32()) return slim_spmv_traffic_bytes();
  const std::size_t vb = slim_.fp32() ? 4 : 8;
  const std::size_t ib = slim_.idx16() ? 2 : 4;
  const std::size_t base_bytes =
      slim_.idx16() ? 4 * static_cast<std::size_t>(mb_) : 0;
  return vb * val_.size() + ib * colidx_.size() + base_bytes +
         rowptr_.size() * sizeof(Index) +
         8 * static_cast<std::size_t>(rows() + cols());
}

}  // namespace kestrel::mat
