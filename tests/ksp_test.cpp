// Krylov solver tests, sequential and distributed.

#include <gtest/gtest.h>

#include <cmath>

#include "app/laplacian.hpp"
#include "ksp/context.hpp"
#include "mat/spgemm.hpp"
#include "ksp/ksp.hpp"
#include "par/parmat.hpp"
#include "pc/jacobi.hpp"
#include "test_matrices.hpp"

namespace kestrel::ksp {
namespace {

Vector make_rhs(const mat::Matrix& a, const Vector& x_true) {
  Vector b;
  a.spmv(x_true, b);
  return b;
}

Vector sinusoid(Index n) {
  Vector x(n);
  for (Index i = 0; i < n; ++i) x[i] = std::sin(0.1 * i + 1.0);
  return x;
}

TEST(Cg, SolvesSpdLaplacian) {
  const mat::Csr a = app::laplacian_dirichlet(16, 16);
  const Vector x_true = sinusoid(a.rows());
  const Vector b = make_rhs(a, x_true);
  Vector x(a.rows());

  Settings settings;
  settings.rtol = 1e-10;
  const Cg cg(settings);
  SeqContext ctx(a);
  const SolveResult res = cg.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.reason, Reason::kConvergedRtol);
  for (Index i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Cg, JacobiPreconditioningReducesIterations) {
  // Congruence-scale an SPD tridiagonal matrix (D A D stays SPD) so the
  // diagonal varies over orders of magnitude and Jacobi has work to do.
  std::vector<Scalar> d(50);
  Rng rng(13);
  for (auto& v : d) v = std::pow(10.0, rng.uniform(0.0, 1.5));
  mat::Coo coo(50, 50);
  for (Index i = 0; i < 50; ++i) {
    coo.add(i, i, 4.0 * d[i] * d[i]);
    if (i > 0) {
      coo.add(i, i - 1, -1.0 * d[i] * d[i - 1]);
      coo.add(i - 1, i, -1.0 * d[i - 1] * d[i]);
    }
  }
  const mat::Csr a = coo.to_csr();

  const Vector x_true = sinusoid(50);
  const Vector b = make_rhs(a, x_true);

  Settings settings;
  settings.rtol = 1e-8;
  const Cg cg(settings);

  Vector x0(50);
  SeqContext plain(a);
  const SolveResult res_plain = cg.solve(plain, b, x0);

  Vector x1(50);
  const pc::Jacobi jacobi(a);
  SeqContext pre(a, &jacobi);
  const SolveResult res_pre = cg.solve(pre, b, x1);

  EXPECT_TRUE(res_pre.converged);
  ASSERT_TRUE(res_plain.converged);
  EXPECT_LT(res_pre.iterations, res_plain.iterations);
}

TEST(Cg, ReportsBreakdownOnIndefiniteOperator) {
  mat::Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 1, -1.0);  // indefinite
  const mat::Csr a = coo.to_csr();
  Vector b{1.0, 1.0}, x(2);
  const Cg cg;
  SeqContext ctx(a);
  const SolveResult res = cg.solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.reason, Reason::kDivergedBreakdown);
}

TEST(Gmres, SolvesNonsymmetricSystem) {
  const mat::Csr a = testing::banded(80, {-3, 1, 7});  // nonsymmetric band
  const Vector x_true = sinusoid(80);
  const Vector b = make_rhs(a, x_true);
  Vector x(80);

  Settings settings;
  settings.rtol = 1e-12;
  settings.max_iterations = 500;
  const Gmres gmres(settings);
  SeqContext ctx(a);
  const SolveResult res = gmres.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < 80; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

TEST(Gmres, RestartStillConverges) {
  const mat::Csr a = testing::banded(60, {-2, 1, 5});
  const Vector x_true = sinusoid(60);
  const Vector b = make_rhs(a, x_true);
  Vector x(60);

  Settings settings;
  settings.rtol = 1e-10;
  settings.gmres_restart = 5;  // force many restart cycles
  settings.max_iterations = 2000;
  const Gmres gmres(settings);
  SeqContext ctx(a);
  const SolveResult res = gmres.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < 60; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Gmres, MonitorSeesMonotoneResiduals) {
  const mat::Csr a = app::laplacian_dirichlet(8, 8);
  const Vector b(a.rows(), 1.0);
  Vector x(a.rows());
  std::vector<Scalar> history;
  Settings settings;
  settings.monitor = [&](int, Scalar rnorm) { history.push_back(rnorm); };
  const Gmres gmres(settings);
  SeqContext ctx(a);
  gmres.solve(ctx, b, x);
  ASSERT_GE(history.size(), 3u);
  for (std::size_t k = 1; k < history.size(); ++k) {
    EXPECT_LE(history[k], history[k - 1] * (1.0 + 1e-12));
  }
}

TEST(Gmres, MaxIterationsReported) {
  const mat::Csr a = app::laplacian_dirichlet(20, 20);
  const Vector b(a.rows(), 1.0);
  Vector x(a.rows());
  Settings settings;
  settings.rtol = 1e-14;
  settings.max_iterations = 3;
  const Gmres gmres(settings);
  SeqContext ctx(a);
  const SolveResult res = gmres.solve(ctx, b, x);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.reason, Reason::kDivergedMaxIts);
}

TEST(BiCgStab, SolvesNonsymmetricSystem) {
  const mat::Csr a = testing::banded(70, {-4, 1, 3});
  const Vector x_true = sinusoid(70);
  const Vector b = make_rhs(a, x_true);
  Vector x(70);
  Settings settings;
  settings.rtol = 1e-12;
  settings.max_iterations = 500;
  const BiCgStab solver(settings);
  SeqContext ctx(a);
  const SolveResult res = solver.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < 70; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Richardson, ConvergesWithJacobiOnDominantMatrix) {
  const mat::Csr a = testing::banded(40, {-1, 1});  // strongly diagonal
  const Vector x_true = sinusoid(40);
  const Vector b = make_rhs(a, x_true);
  Vector x(40);
  Settings settings;
  settings.rtol = 1e-10;
  settings.max_iterations = 2000;
  const Richardson solver(settings);
  const pc::Jacobi jacobi(a);
  SeqContext ctx(a, &jacobi);
  const SolveResult res = solver.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < 40; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-6);
}

TEST(Chebyshev, ConvergesWithSpectralBounds) {
  const mat::Csr a = app::laplacian_dirichlet(12, 12);
  SeqContext bare(a);
  const Scalar emax = estimate_max_eigenvalue(bare) * 1.1;
  const Vector x_true = sinusoid(a.rows());
  const Vector b = make_rhs(a, x_true);
  Vector x(a.rows());
  Settings settings;
  settings.rtol = 1e-9;
  settings.max_iterations = 3000;
  const Chebyshev solver(settings, emax / 30.0, emax);
  SeqContext ctx(a);
  const SolveResult res = solver.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  for (Index i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], x_true[i], 1e-4);
}

TEST(EstimateEigenvalue, LaplacianSpectralRadius) {
  // 2D Dirichlet Laplacian eigenvalues are known analytically:
  // lambda(p,q) = (4/h^2)(sin^2(p pi h / 2) + sin^2(q pi h / 2)).
  const Index n = 8;
  const mat::Csr a = app::laplacian_dirichlet(n, n);
  SeqContext ctx(a);
  const Scalar est = estimate_max_eigenvalue(ctx, 100);
  const Scalar h = 1.0 / (n + 1);
  const Scalar exact =
      (4.0 / (h * h)) * 2.0 * std::pow(std::sin(n * M_PI * h / 2.0), 2.0);
  EXPECT_NEAR(est, exact, 0.05 * exact);
}

TEST(SolverFactory, MakesAllTypes) {
  EXPECT_EQ(make_solver("cg")->name(), "cg");
  EXPECT_EQ(make_solver("gmres")->name(), "gmres");
  EXPECT_EQ(make_solver("bicgstab")->name(), "bicgstab");
  EXPECT_EQ(make_solver("richardson")->name(), "richardson");
  EXPECT_THROW(make_solver("nope"), Error);
}

TEST(ParallelKsp, CgMatchesSequentialSolution) {
  const mat::Csr a = app::laplacian_dirichlet(12, 12);
  const Vector x_true = sinusoid(a.rows());
  const Vector b = make_rhs(a, x_true);

  // sequential reference
  Vector x_seq(a.rows());
  Settings settings;
  settings.rtol = 1e-10;
  const Cg cg(settings);
  SeqContext seq(a);
  ASSERT_TRUE(cg.solve(seq, b, x_seq).converged);

  for (int nranks : {2, 4}) {
    auto layout =
        std::make_shared<par::Layout>(par::Layout::even(a.rows(), nranks));
    par::Fabric::run(nranks, [&](par::Comm& comm) {
      const par::ParMatrix pa =
          par::ParMatrix::from_global(a, layout, comm, {});
      par::ParVector xb(layout, comm.rank());
      xb.set_from_global(b);
      Vector x_local(pa.local_rows());
      ParContext ctx(pa, comm);
      const SolveResult res = cg.solve(ctx, xb.local(), x_local);
      EXPECT_TRUE(res.converged);
      // compare against the sequential answer on the owned block
      const Index b0 = layout->begin(comm.rank());
      for (Index i = 0; i < x_local.size(); ++i) {
        EXPECT_NEAR(x_local[i], x_seq[b0 + i], 1e-6);
      }
    });
  }
}

TEST(ParallelKsp, GmresWithSellDiagAndJacobi) {
  const mat::Csr a = testing::banded(48, {-4, -1, 1, 4});
  const Vector x_true = sinusoid(48);
  const Vector b = make_rhs(a, x_true);
  auto layout = std::make_shared<par::Layout>(par::Layout::even(48, 3));
  par::Fabric::run(3, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.diag_format = par::DiagFormat::kSell;
    const par::ParMatrix pa =
        par::ParMatrix::from_global(a, layout, comm, opts);
    // local block-Jacobi preconditioner from the diagonal entries
    Vector diag_local;
    pa.get_diagonal(diag_local);
    par::ParVector xb(layout, comm.rank());
    xb.set_from_global(b);
    Vector x_local(pa.local_rows());
    Settings settings;
    settings.rtol = 1e-10;
    settings.max_iterations = 400;
    const Gmres gmres(settings);
    ParContext ctx(pa, comm);
    const SolveResult res = gmres.solve(ctx, xb.local(), x_local);
    EXPECT_TRUE(res.converged);
    const Index b0 = layout->begin(comm.rank());
    for (Index i = 0; i < x_local.size(); ++i) {
      EXPECT_NEAR(x_local[i], x_true[b0 + i], 1e-6);
    }
  });
}

}  // namespace
}  // namespace kestrel::ksp
