#pragma once
// SOR / SSOR preconditioner over a CSR matrix. One symmetric sweep
// (forward + backward) per apply, with relaxation factor omega.

#include "pc/pc.hpp"

namespace kestrel::mat {
class Csr;
}

namespace kestrel::pc {

class Sor final : public Pc {
 public:
  enum class Sweep { kForward, kBackward, kSymmetric };

  explicit Sor(const mat::Csr& a, Scalar omega = 1.0,
               Sweep sweep = Sweep::kSymmetric, int iterations = 1);

  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "sor"; }

 private:
  void forward_sweep(const Vector& r, Vector& z) const;
  void backward_sweep(const Vector& r, Vector& z) const;

  const mat::Csr& a_;
  Scalar omega_;
  Sweep sweep_;
  int iterations_;
  Vector diag_;
};

}  // namespace kestrel::pc
