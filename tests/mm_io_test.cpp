// Matrix Market I/O tests.

#include <gtest/gtest.h>

#include <sstream>

#include "base/error.hpp"
#include "mat/mm_io.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr a = testing::uniform_random(9, 7, 3, 8);
  std::stringstream ss;
  write_matrix_market(a, ss);
  const Csr b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(b.at(i, j), a.at(i, j), 1e-15);
    }
  }
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "3 3 5.0\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal entry mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
}

TEST(MatrixMarket, PatternFieldDefaultsToOne) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 2\n"
     << "2 1\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss;
  ss << "%%NotMatrixMarket matrix coordinate real general\n2 2 0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntries) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsTruncatedData) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 2\n"
     << "1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const Csr a = testing::banded(6, {-1, 1});
  const std::string path = ::testing::TempDir() + "/kestrel_mm_test.mtx";
  write_matrix_market_file(a, path);
  const Csr b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"), Error);
}

}  // namespace
}  // namespace kestrel::mat
