// SELF-TEST FIXTURE — slim CSR scalar kernel that rebases the compressed
// column stream off by one: x is indexed with base[i] + off16[k] + 1. The
// span(off16, base, rowptr, n) contract bounds base[i] + off16[k] in
// [0, n) only — the +1 pushes the read one past the last column, so the
// x access must fail the bounds proof.
//
// expect-violation: bounds :: cannot prove x\[

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_slim isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_slim_spmv_scalar
// argus-param: a : view CsrSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void csr_slim_spmv_scalar(const CsrSlimView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    const Index end = a.rowptr[i + 1];
    const Index b = a.base[i];
    Scalar sum = 0.0;
    for (Index k = begin; k < end; ++k) {
      sum += a.val[k] * x[b + a.off16[k] + 1];
    }
    y[i] = sum;
  }
}

}  // namespace

void register_csr_slim_scalar() {
  KESTREL_REGISTER_KERNEL(kCsrSlimSpmv, kScalar, csr_slim_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
