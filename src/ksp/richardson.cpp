// Damped Richardson iteration x += omega * M^{-1}(b - A x) — the classic
// stationary method; with a Jacobi preconditioner this is the smoother the
// paper's multigrid configuration uses on every level
// (-mg_levels_pc_type jacobi).

#include "base/error.hpp"
#include "ksp/ksp.hpp"

namespace kestrel::ksp {

SolveResult Richardson::solve_once(LinearContext& ctx, const Vector& b,
                                   Vector& x) const {
  const Index n = ctx.local_size();
  KESTREL_CHECK(b.size() == n, "richardson: rhs size mismatch");
  KESTREL_CHECK(x.size() == n, "richardson: solution size mismatch");
  SolveResult result;

  Vector r(n), z(n);
  ctx.apply_operator(x, r);
  r.aypx(-1.0, b);
  const Scalar rnorm0 = ctx.norm2(r);
  if (check(rnorm0, rnorm0, 0, &result)) return result;

  for (int it = 1;; ++it) {
    ctx.apply_pc(r, z);
    x.axpy(omega_, z);
    ctx.apply_operator(x, r);
    r.aypx(-1.0, b);
    const Scalar rnorm = ctx.norm2(r);
    if (check(rnorm, rnorm0, it, &result)) return result;
  }
}

}  // namespace kestrel::ksp
