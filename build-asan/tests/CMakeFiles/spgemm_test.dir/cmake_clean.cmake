file(REMOVE_RECURSE
  "CMakeFiles/spgemm_test.dir/spgemm_test.cpp.o"
  "CMakeFiles/spgemm_test.dir/spgemm_test.cpp.o.d"
  "spgemm_test"
  "spgemm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spgemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
