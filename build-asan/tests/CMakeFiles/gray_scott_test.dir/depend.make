# Empty dependencies file for gray_scott_test.
# This may be replaced when dependencies are built.
