#pragma once
// Kestrel Bastion: the in-process multi-tenant solve service.
//
// SolveService owns a bounded request queue and a small worker pool serving
// solves against MatrixRegistry handles. Robustness is the headline, built
// from four mechanisms that compose end-to-end:
//
//   admission control  submit() on a full queue sheds IMMEDIATELY with a
//                      structured RejectedError carrying the observed depth
//                      and a retry-after hint (EWMA of recent service
//                      time), so overload produces fast, parseable "no"s
//                      instead of unbounded queueing.
//   graceful           the LoadWatchdog watches queue occupancy; under
//   degradation        sustained load the service caps max_iterations and
//                      serves ABFT handles through their sampled-
//                      verification twins before it ever sheds.
//   deadlines +        every request runs under a Deadline token threaded
//   cancellation       into the KSP iteration loop (Settings::deadline);
//                      expiry or Ticket::cancel() stops the math at the
//                      next iteration and returns the best iterate with
//                      Status::kDeadlineExceeded.
//   fault isolation    handles are immutable and per-request state is
//                      per-request; an AbftError escalating out of one
//                      tenant's solve maps to Status::kFaulted for that
//                      response only and the worker moves on.
//
// Per-request Scope metrics (queue wait, solve seconds, shed / deadline /
// fault counters) are exported through export_metrics() into the
// kestrel-scope-metrics-v2 stream.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.hpp"
#include "base/options.hpp"
#include "ksp/ksp.hpp"
#include "svc/registry.hpp"
#include "svc/watchdog.hpp"
#include "vec/vector.hpp"

namespace kestrel::prof {
class Profiler;
}

namespace kestrel::svc {

struct ServiceOptions {
  int workers = 2;
  int queue_depth = 8;  ///< max waiting requests (excludes in-service ones)
  /// Applied to requests that do not set their own deadline; 0 = none.
  double default_deadline_s = 0.0;
  /// Degraded mode caps every request's max_iterations at this value.
  int degraded_max_iterations = 100;
  WatchdogOptions watchdog;

  /// Reads -svc_workers, -svc_queue_depth, -svc_deadline_ms,
  /// -svc_mem_budget (MB; applied to MemoryBudget::global()),
  /// -svc_degraded_max_it, -svc_watchdog_high, -svc_watchdog_low,
  /// -svc_watchdog_window.
  static ServiceOptions from_options(const Options& o);
};

enum class Status {
  kOk,                ///< solver finished (converged, or hit its own limits)
  kDeadlineExceeded,  ///< deadline/cancel tripped; x holds the best iterate
  kFaulted,           ///< AbftError escalated out of this tenant's solve
  kFailed,            ///< structured error (unknown handle, bad request, ...)
};

const char* status_name(Status s);

struct SolveRequest {
  std::string handle;            ///< registry name of the operator
  std::string tenant = "default";
  std::string ksp_type = "cg";   ///< cg|gmres|fgmres|bicgstab|richardson|
                                 ///< chebyshev (needs cheb_emin/cheb_emax)
  ksp::Settings ksp;
  Vector b;
  /// Wall budget for this request, queue wait included; 0 uses the service
  /// default (which may itself be "none").
  double deadline_s = 0.0;
  /// Spectrum bounds for ksp_type == "chebyshev".
  Scalar cheb_emin = 0.0;
  Scalar cheb_emax = 0.0;
};

struct SolveResponse {
  Status status = Status::kFailed;
  ksp::SolveResult ksp;  ///< valid for kOk and kDeadlineExceeded
  Vector x;              ///< best iterate (kOk / kDeadlineExceeded)
  double queue_wait_s = 0.0;
  double solve_s = 0.0;
  bool degraded = false;  ///< served in watchdog-degraded mode
  std::string error;      ///< what() for kFaulted / kFailed
};

class SolveService {
 public:
  explicit SolveService(MatrixRegistry& registry, ServiceOptions opts = {});
  /// Stops admitting, lets in-flight solves finish (their deadlines bound
  /// that), resolves still-queued requests as kDeadlineExceeded so no
  /// Ticket::wait() hangs, and joins the workers.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Handle to one accepted request.
  class Ticket {
   public:
    Ticket() = default;
    /// Blocks until the response is ready (deadlines bound this: a request
    /// under deadline cannot wait forever).
    SolveResponse wait();
    bool done() const;
    /// Cooperative cancel: trips the request's Deadline token; a queued
    /// request resolves without solving, a running one stops at the next
    /// KSP iteration. Idempotent.
    void cancel();

   private:
    friend class SolveService;
    struct Pending;
    explicit Ticket(std::shared_ptr<Pending> p) : p_(std::move(p)) {}
    std::shared_ptr<Pending> p_;
  };

  /// Admission control: throws RejectedError immediately when the queue is
  /// full (or the service is shutting down). Never blocks.
  Ticket submit(SolveRequest req);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t completed = 0;  ///< kOk responses
    std::uint64_t shed = 0;       ///< RejectedError throws out of submit()
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t faulted = 0;
    std::uint64_t failed = 0;
    std::uint64_t degraded_served = 0;
    double total_queue_wait_s = 0.0;
    double total_solve_s = 0.0;
    double ewma_solve_s = 0.0;  ///< the retry-after hint basis
  };
  Stats stats() const;

  const LoadWatchdog& watchdog() const { return watchdog_; }
  const ServiceOptions& options() const { return opts_; }
  int queue_depth() const;

  /// Sets svc/* metrics (accepted, shed, deadline_exceeded, faulted, queue
  /// wait and solve totals, watchdog transitions) on `p` for the
  /// kestrel-scope-metrics-v2 JSON stream.
  void export_metrics(prof::Profiler& p) const;

 private:
  void worker_main();
  SolveResponse serve(Ticket::Pending& pending, bool degraded);

  MatrixRegistry& registry_;
  ServiceOptions opts_;
  LoadWatchdog watchdog_;

  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::deque<std::shared_ptr<Ticket::Pending>> queue_;
  bool stop_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace kestrel::svc
