#pragma once
// In-process message-passing fabric.
//
// The paper's parallel SpMV runs on MPI; this machine has a single core and
// no MPI, so Kestrel provides an MPI-shaped substrate whose ranks are
// std::threads and whose messages travel through in-memory mailboxes. The
// subset implemented (nonblocking send/recv + wait, allreduce, barrier,
// gather) is exactly what the overlapped SpMV of paper section 2.2 and the
// Krylov solvers need. Semantics follow MPI: sends are eager and
// nonblocking, receives match on (source, tag) in posting order.
//
// Correctness instrumentation (Kestrel Sentry): debug builds, sanitizer
// presets and KESTREL_FABRIC_CHECK=1 attach a FabricChecker (par/checker.hpp)
// that records a happens-before event trace and fails loudly on mismatched
// collectives, double-wait, un-waited requests and fabric hangs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "base/types.hpp"

namespace kestrel::par {

class Fabric;
class FabricChecker;

/// Handle for a pending nonblocking receive. Waiting on the same request
/// twice (directly or via a copy) is a contract violation: it throws
/// unconditionally, and with the fabric checker enabled it is reported with
/// rank/source/tag context and the recent event trace.
struct Request {
  int source = -1;
  int tag = -1;
  std::vector<Scalar>* sink = nullptr;
  bool done = false;
  /// Checker-issued id (0 when checking is disabled). Used to detect
  /// double-wait through copies and requests dropped without a wait.
  std::uint64_t id = 0;
};

/// Per-rank communicator; valid only inside Fabric::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Eager nonblocking send: data is copied into the destination mailbox
  /// and the call returns immediately.
  void isend(int dest, int tag, const std::vector<Scalar>& data);
  void isend(int dest, int tag, const Scalar* data, std::size_t count);

  /// Posts a receive; wait() blocks until a message from (source, tag)
  /// arrives and fills *sink. Every posted request must be waited on
  /// exactly once before the rank function returns.
  Request irecv(int source, int tag, std::vector<Scalar>* sink);
  void wait(Request& req);

  /// Blocking receive convenience.
  std::vector<Scalar> recv(int source, int tag);

  enum class ReduceOp { kSum, kMax, kMin };
  Scalar allreduce(Scalar value, ReduceOp op = ReduceOp::kSum);
  std::int64_t allreduce(std::int64_t value, ReduceOp op = ReduceOp::kSum);

  /// Every rank contributes a vector; every rank receives the
  /// rank-concatenated result.
  std::vector<Scalar> allgatherv(const std::vector<Scalar>& local);
  std::vector<Index> allgatherv(const std::vector<Index>& local);

  void barrier();

 private:
  friend class Fabric;
  Comm(Fabric* fabric, int rank, int size)
      : fabric_(fabric), rank_(rank), size_(size) {}
  /// Collective bodies without checker events; the public entry points
  /// record exactly one event each so the checker sees the user's program
  /// order, not the implementation's message pattern.
  Scalar allreduce_impl(Scalar value, ReduceOp op);
  std::vector<Scalar> allgatherv_impl(const std::vector<Scalar>& local);
  FabricChecker* checker() const;

  Fabric* fabric_;
  int rank_;
  int size_;
};

/// Configuration for one Fabric::run. Defaults come from the build and the
/// environment so test suites can flip checking on globally:
///   * check: KESTREL_FABRIC_CHECK=0/1 if set; else KESTREL_FABRIC_CHECK_DEFAULT
///     if compiled in (the sanitizer presets define it to 1); else on in
///     debug (!NDEBUG) builds and off in release builds.
///   * hang_timeout_s: KESTREL_FABRIC_HANG_TIMEOUT seconds if set, else 30.
///     Only active while checking; <= 0 disables hang detection.
struct FabricOptions {
  FabricOptions();  // resolves the defaults described above
  bool check;
  double hang_timeout_s;
};

/// Owns the mailboxes and threads. Usage:
///   Fabric::run(4, [](Comm& comm) { ... });
class Fabric {
 public:
  /// Spawns `nranks` threads executing fn(comm); rethrows the first rank
  /// exception after all threads join.
  static void run(int nranks, const std::function<void(Comm&)>& fn);
  static void run(int nranks, const FabricOptions& opts,
                  const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;
  Fabric(int nranks, const FabricOptions& opts);
  ~Fabric();

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // (source, tag) -> FIFO of message payloads
    std::map<std::pair<int, int>, std::deque<std::vector<Scalar>>> queue;
  };

  void deliver(int dest, int source, int tag, std::vector<Scalar> payload);
  std::vector<Scalar> take(int self, int source, int tag);
  /// Wakes every blocked rank after a rank failed, so one rank's exception
  /// cannot deadlock the rest of the fabric.
  void abort_all();

  int nranks_;
  FabricOptions opts_;
  std::unique_ptr<FabricChecker> checker_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> first_failed_rank_{-1};
};

}  // namespace kestrel::par
