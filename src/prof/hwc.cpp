#include "prof/hwc.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#ifdef __linux__
#include <dirent.h>
#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace kestrel::prof::hwc {

// ---- pure counter math ----------------------------------------------------

std::uint64_t scale_multiplexed(std::uint64_t raw, std::uint64_t time_enabled,
                                std::uint64_t time_running) {
  if (time_running == 0) return 0;  // group never scheduled: nothing counted
  if (time_running >= time_enabled) return raw;  // no multiplexing
  // Extrapolate in long double: enabled/running are nanoseconds and raw can
  // be ~1e10+, so the u64*u64 product would overflow before dividing.
  const long double scaled = static_cast<long double>(raw) *
                             static_cast<long double>(time_enabled) /
                             static_cast<long double>(time_running);
  return static_cast<std::uint64_t>(scaled);
}

std::uint64_t wrap_delta(std::uint64_t before, std::uint64_t now) {
  return now - before;  // unsigned arithmetic wraps exactly as the counter
}

std::uint64_t llc_fallback_bytes(std::uint64_t llc_misses) {
  return llc_misses * kCacheLineBytes;
}

const char* source_name(Source s) {
  switch (s) {
    case Source::kNone:
      return "none";
    case Source::kLlcFallback:
      return "llc-fallback";
    case Source::kUncoreImc:
      return "uncore-imc";
    case Source::kSoftwareDebug:
      return "software-debug";
  }
  return "?";
}

// ---- Group ---------------------------------------------------------------

#ifdef __linux__

namespace {

long perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                             int group_fd, unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

}  // namespace

Group::~Group() { close(); }

Group::Group(Group&& other) noexcept
    : fds_(std::move(other.fds_)), error_(std::move(other.error_)) {
  other.fds_.clear();
}

Group& Group::operator=(Group&& other) noexcept {
  if (this != &other) {
    close();
    fds_ = std::move(other.fds_);
    error_ = std::move(other.error_);
    other.fds_.clear();
  }
  return *this;
}

void Group::close() {
  for (const int fd : fds_) ::close(fd);
  fds_.clear();
}

bool Group::open(const std::vector<CounterSpec>& specs, int pid, int cpu) {
  close();
  error_.clear();
  if (specs.empty()) {
    error_ = "empty counter spec";
    return false;
  }
  for (const CounterSpec& spec : specs) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = spec.type;
    attr.config = spec.config;
    // Leader reads the whole group in one snapshot, with the enabled /
    // running times the multiplexing correction needs.
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    // Start disabled; one group-wide ioctl below enables every member at
    // the same instant so the first span's delta is consistent.
    attr.disabled = fds_.empty() ? 1 : 0;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const int group_fd = fds_.empty() ? -1 : fds_.front();
    const long fd = perf_event_open_syscall(&attr, pid, cpu, group_fd, 0);
    if (fd < 0) {
      error_ = "perf_event_open(type=" + std::to_string(spec.type) +
               ",config=" + std::to_string(spec.config) +
               "): " + std::strerror(errno);
      close();
      return false;
    }
    fds_.push_back(static_cast<int>(fd));
  }
  if (ioctl(fds_.front(), PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ioctl(fds_.front(), PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    error_ = std::string("PERF_EVENT_IOC_ENABLE: ") + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

bool Group::sample(Sample* out) const {
  if (fds_.empty()) return false;
  // Group read layout (PERF_FORMAT_GROUP + both times, no PERF_FORMAT_ID):
  //   u64 nr; u64 time_enabled; u64 time_running; u64 value[nr];
  const std::size_t n = fds_.size();
  std::vector<std::uint64_t> buf(3 + n);
  const ssize_t want =
      static_cast<ssize_t>(buf.size() * sizeof(std::uint64_t));
  const ssize_t got = ::read(fds_.front(), buf.data(),
                             static_cast<std::size_t>(want));
  if (got < want || buf[0] != n) return false;
  out->time_enabled = buf[1];
  out->time_running = buf[2];
  out->values.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out->values[i] = scale_multiplexed(buf[3 + i], buf[1], buf[2]);
  }
  return true;
}

#else  // !__linux__: stub Group so the library builds anywhere

Group::~Group() = default;
Group::Group(Group&&) noexcept = default;
Group& Group::operator=(Group&&) noexcept = default;
void Group::close() {}
bool Group::open(const std::vector<CounterSpec>&, int, int) {
  error_ = "perf_event requires Linux";
  return false;
}
bool Group::sample(Sample*) const { return false; }

#endif  // __linux__

// ---- capability probing ---------------------------------------------------

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<int> g_source{static_cast<int>(Source::kNone)};

std::vector<CounterSpec> core_specs() {
  return {{kTypeHardware, kHwCycles},
          {kTypeHardware, kHwInstructions},
          {kTypeHardware, kHwCacheMisses}};
}

/// Software stand-ins for VMs/CI (KESTREL_HWC_SOFTWARE=1): task-clock ns
/// fill the cycles/instructions slots, page faults the LLC-miss slot. The
/// numbers are not cycle counts — the point is that the whole snapshot /
/// delta / reduce / export pipeline runs against real grouped fd reads.
std::vector<CounterSpec> software_specs() {
  return {{kTypeSoftware, kSwTaskClock},
          {kTypeSoftware, kSwTaskClock},
          {kTypeSoftware, kSwPageFaults}};
}

#ifdef __linux__

int read_paranoid() {
  FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -1;
  int v = -1;
  const int rc = std::fscanf(f, "%d", &v);
  std::fclose(f);
  return rc == 1 ? v : -1;
}

/// Parses "event=0x04,umask=0x03" (the standard IMC cas_count_read alias)
/// into a raw config word. Returns false on any unexpected token.
bool parse_imc_config(const char* text, std::uint64_t* config) {
  std::uint64_t event = 0;
  std::uint64_t umask = 0;
  bool have_event = false;
  const char* p = text;
  while (*p != '\0' && *p != '\n') {
    char key[16];
    unsigned long long value = 0;
    int consumed = 0;
    if (std::sscanf(p, "%15[a-z_]=%llx%n", key, &value, &consumed) != 2) {
      return false;
    }
    if (std::strcmp(key, "event") == 0) {
      event = value;
      have_event = true;
    } else if (std::strcmp(key, "umask") == 0) {
      umask = value;
    }
    p += consumed;
    if (*p == ',') ++p;
  }
  if (!have_event) return false;
  *config = event | (umask << 8);
  return true;
}

/// Finds the uncore IMC PMUs and their cas_count_read encoding. Returns
/// one spec per IMC box (each is opened system-wide on cpu 0 and summed).
std::vector<CounterSpec> probe_uncore_imc() {
  std::vector<CounterSpec> specs;
  DIR* dir = opendir("/sys/bus/event_source/devices");
  if (dir == nullptr) return specs;
  while (dirent* entry = readdir(dir)) {
    if (std::strncmp(entry->d_name, "uncore_imc", 10) != 0) continue;
    const std::string base =
        std::string("/sys/bus/event_source/devices/") + entry->d_name;
    std::uint32_t type = 0;
    {
      FILE* f = std::fopen((base + "/type").c_str(), "re");
      if (f == nullptr) continue;
      unsigned v = 0;
      const int rc = std::fscanf(f, "%u", &v);
      std::fclose(f);
      if (rc != 1) continue;
      type = v;
    }
    std::uint64_t config = 0;
    {
      FILE* f = std::fopen((base + "/events/cas_count_read").c_str(), "re");
      if (f == nullptr) continue;
      char text[128] = {0};
      const std::size_t got = std::fread(text, 1, sizeof(text) - 1, f);
      std::fclose(f);
      text[got] = '\0';
      if (!parse_imc_config(text, &config)) continue;
    }
    specs.push_back({type, config});
  }
  closedir(dir);
  return specs;
}

#else

int read_paranoid() { return -1; }
std::vector<CounterSpec> probe_uncore_imc() { return {}; }

#endif  // __linux__

Capability probe_capability() {
  Capability cap;
  cap.paranoid = read_paranoid();
#ifndef __linux__
  cap.detail = "perf_event requires Linux";
  return cap;
#else
  if (cap.paranoid < 0) {
    cap.detail = "no /proc/sys/kernel/perf_event_paranoid (kernel built "
                 "without perf_event, or masked by the container)";
    return cap;
  }
  {
    Group probe;
    cap.counters = probe.open(core_specs());
    if (!cap.counters) {
      cap.detail = probe.error() + " (perf_event_paranoid=" +
                   std::to_string(cap.paranoid) +
                   "; typical causes: no PMU in this VM/container, or "
                   "paranoid level blocks unprivileged counters)";
    }
  }
  {
    Group probe;
    cap.sw_counters = probe.open(software_specs());
  }
  if (cap.counters) {
    const std::vector<CounterSpec> imc = probe_uncore_imc();
    if (!imc.empty()) {
      // Uncore PMUs are per-socket and cpu-scoped: open system-wide on
      // cpu 0 to confirm permission (requires paranoid <= 0 or root).
      Group probe;
      cap.dram_uncore = probe.open({imc.front()}, /*pid=*/-1, /*cpu=*/0);
    }
  }
  return cap;
#endif
}

}  // namespace

const Capability& capability() {
  static const Capability cap = probe_capability();
  return cap;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
  if (!on) g_source.store(static_cast<int>(Source::kNone),
                          std::memory_order_relaxed);
}

Source source() {
  return static_cast<Source>(g_source.load(std::memory_order_relaxed));
}

namespace {

bool software_debug_requested() {
  const char* v = std::getenv("KESTREL_HWC_SOFTWARE");
  return v != nullptr && *v != '\0' && !(v[0] == '0' && v[1] == '\0');
}

std::once_flag g_warned_once;

}  // namespace

bool enable_if_capable() {
  const Capability& cap = capability();
  if (software_debug_requested() && cap.sw_counters) {
    g_source.store(static_cast<int>(Source::kSoftwareDebug),
                   std::memory_order_relaxed);
    g_enabled.store(true, std::memory_order_relaxed);
    return true;
  }
  if (cap.counters) {
    g_source.store(static_cast<int>(cap.dram_uncore ? Source::kUncoreImc
                                                    : Source::kLlcFallback),
                   std::memory_order_relaxed);
    g_enabled.store(true, std::memory_order_relaxed);
    return true;
  }
  std::call_once(g_warned_once, [&cap] {
    std::fprintf(stderr,
                 "kestrel: [hwc] hardware counters unavailable: %s; "
                 "continuing with modeled bytes only\n",
                 cap.detail.c_str());
  });
  return false;
}

// ---- per-thread sampler ---------------------------------------------------

namespace {

#ifdef __linux__

/// One system-wide uncore reader shared by every thread (IMC counters are
/// socket-scoped, not thread-scoped). Guarded by a mutex: reads are rare
/// (two per profiled span) and cheap next to the syscall itself.
class UncoreReader {
 public:
  /// Sum of CAS-read counts x 64 over all IMC boxes; 0 when unavailable.
  std::uint64_t read_bytes() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!tried_) {
      tried_ = true;
      for (const CounterSpec& spec : probe_uncore_imc()) {
        Group g;
        if (g.open({spec}, /*pid=*/-1, /*cpu=*/0)) {
          groups_.push_back(std::move(g));
        }
      }
    }
    std::uint64_t cas = 0;
    for (const Group& g : groups_) {
      Group::Sample s;
      if (g.sample(&s) && !s.values.empty()) cas += s.values[0];
    }
    return cas * kCacheLineBytes;
  }

 private:
  std::mutex mu_;
  bool tried_ = false;
  std::vector<Group> groups_;
};

UncoreReader& uncore_reader() {
  static UncoreReader reader;
  return reader;
}

#endif  // __linux__

struct ThreadSampler {
  Group group;
  Source opened_for = Source::kNone;
};

thread_local ThreadSampler t_sampler;

}  // namespace

Reading read_thread() {
  Reading r;
  if (!enabled()) return r;
  const Source src = source();
  ThreadSampler& s = t_sampler;
  if (s.opened_for != src) {
    // First use on this thread (or the source changed): (re)open lazily so
    // every fabric rank thread gets its own group without registration.
    s.group.close();
    s.opened_for = src;
    const std::vector<CounterSpec> specs =
        src == Source::kSoftwareDebug ? software_specs() : core_specs();
    s.group.open(specs);
  }
  if (!s.group.valid()) return r;
  Group::Sample smp;
  if (!s.group.sample(&smp) || smp.values.size() < 3) return r;
  r.valid = true;
  r.cycles = smp.values[0];
  r.instructions = smp.values[1];
  r.llc_misses = smp.values[2];
  r.time_enabled = smp.time_enabled;
  r.time_running = smp.time_running;
#ifdef __linux__
  if (src == Source::kUncoreImc) {
    r.dram_bytes = uncore_reader().read_bytes();
    return r;
  }
#endif
  r.dram_bytes = llc_fallback_bytes(r.llc_misses);
  return r;
}

Reading delta(const Reading& before, const Reading& now) {
  Reading d;
  if (!before.valid || !now.valid) return d;
  d.valid = true;
  d.cycles = wrap_delta(before.cycles, now.cycles);
  d.instructions = wrap_delta(before.instructions, now.instructions);
  d.llc_misses = wrap_delta(before.llc_misses, now.llc_misses);
  d.dram_bytes = wrap_delta(before.dram_bytes, now.dram_bytes);
  d.time_enabled = wrap_delta(before.time_enabled, now.time_enabled);
  d.time_running = wrap_delta(before.time_running, now.time_running);
  return d;
}

}  // namespace kestrel::prof::hwc
