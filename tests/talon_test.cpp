// Talon (SPC5-style beta(r,c) block format) unit tests: inspector
// geometry, storage invariants, CSR round trips, value refresh, diagonal
// extraction, the traffic-byte formula, and edge cases (empty matrix,
// empty rows, matrix-edge blocks).

#include <gtest/gtest.h>

#include <bit>

#include "app/gray_scott.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "mat/talon.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

using testing::dense_spmv;
using testing::random_x;

Csr two_by_two_blocks(Index nb, std::uint64_t seed = 11) {
  // Fully dense 2x2 blocks on a ring: the shape Talon is built for.
  Coo coo(nb * 2, nb * 2);
  Rng rng(seed);
  for (Index ib = 0; ib < nb; ++ib) {
    for (Index jb : {ib, (ib + 1) % nb}) {
      for (Index r = 0; r < 2; ++r) {
        for (Index c = 0; c < 2; ++c) {
          coo.add(ib * 2 + r, jb * 2 + c, rng.uniform(-1.0, 1.0));
        }
      }
    }
  }
  return coo.to_csr();
}

TEST(Talon, PanelPartitionCoversAllRowsExactlyOnce) {
  for (Index force_r : {Index(0), Index(1), Index(2), Index(4)}) {
    TalonOptions opts;
    opts.force_r = force_r;
    const Csr csr = testing::power_law(53);
    const Talon t(csr, opts);
    const TalonView v = t.view();
    ASSERT_GT(t.num_panels(), 0);
    EXPECT_EQ(v.panel_row[0], 0);
    EXPECT_EQ(v.panel_row[t.num_panels()], csr.rows());
    for (Index p = 0; p < t.num_panels(); ++p) {
      const Index r = v.panel_row[p + 1] - v.panel_row[p];
      EXPECT_TRUE(r == 1 || r == 2 || r == 4) << "panel " << p;
      if (force_r != 0) {
        EXPECT_LE(r, force_r);
      }
    }
    EXPECT_EQ(t.panels_with_r(1) + t.panels_with_r(2) + t.panels_with_r(4),
              t.num_panels());
  }
}

TEST(Talon, MaskPopcountsAccountForEveryNonzero) {
  const Csr csr = testing::uniform_random(60, 60, 5);
  const Talon t(csr);
  const TalonView v = t.view();
  std::int64_t counted = 0;
  for (Index p = 0; p < v.npanels; ++p) {
    const Index r = v.panel_row[p + 1] - v.panel_row[p];
    std::int64_t panel_nnz = 0;
    for (Index b = v.panel_blockptr[p]; b < v.panel_blockptr[p + 1]; ++b) {
      // no bits above row r-1 may be set (widen first: shifting a uint32_t
      // by 32 when r == 4 would be UB)
      EXPECT_EQ(static_cast<std::uint64_t>(v.block_mask[b]) >>
                    (8u * static_cast<unsigned>(r)),
                0u);
      EXPECT_NE(v.block_mask[b], 0u) << "empty block stored";
      panel_nnz += std::popcount(v.block_mask[b]);
    }
    EXPECT_EQ(v.panel_valptr[p + 1] - v.panel_valptr[p], panel_nnz);
    counted += panel_nnz;
  }
  EXPECT_EQ(counted, csr.nnz());
}

TEST(Talon, InspectorPicksTallPanelsOnBlockStructure) {
  // Dense 2x2 blocks share column structure between row pairs, so the
  // inspector should never fall back to r = 1 panels here.
  const Csr csr = two_by_two_blocks(32);
  const Talon t(csr);
  EXPECT_EQ(t.panels_with_r(1), 0);
  EXPECT_GT(t.block_fill(), 0.4);
  // and the blocks must beat one-per-nonzero by a wide margin
  EXPECT_LT(t.num_blocks(), csr.nnz() / 3);
}

TEST(Talon, RoundTripsThroughCsrExactly) {
  for (Index force_r : {Index(0), Index(1), Index(2), Index(4)}) {
    TalonOptions opts;
    opts.force_r = force_r;
    for (const Csr& csr :
         {testing::banded(41, {-3, -1, 1, 3}), testing::power_law(64),
          testing::with_empty_rows(48), testing::single_column(20),
          testing::straddling_boundaries(40)}) {
      const Talon t(csr, opts);
      EXPECT_EQ(t.nnz(), csr.nnz());
      const Csr back = t.to_csr();
      ASSERT_EQ(back.rows(), csr.rows());
      ASSERT_EQ(back.nnz(), csr.nnz());
      for (Index i = 0; i < csr.rows(); ++i) {
        const auto c0 = csr.row_cols(i);
        const auto c1 = back.row_cols(i);
        const auto v0 = csr.row_vals(i);
        const auto v1 = back.row_vals(i);
        ASSERT_EQ(c0.size(), c1.size()) << "row " << i;
        for (std::size_t k = 0; k < c0.size(); ++k) {
          EXPECT_EQ(c0[k], c1[k]) << "row " << i;
          EXPECT_EQ(v0[k], v1[k]) << "row " << i;
        }
      }
    }
  }
}

TEST(Talon, CopyValuesFromRefreshesInPlace) {
  const Csr a = testing::banded(37, {-2, 2}, 13);
  Csr b = a;
  for (std::int64_t k = 0; k < b.nnz(); ++k) b.mutable_val()[k] *= 3.0;
  Talon t(a);
  t.copy_values_from(b);
  const auto x = random_x(a.cols(), 17);
  const auto expect = dense_spmv(b, x);
  Vector xv(a.cols());
  for (Index i = 0; i < a.cols(); ++i) xv[i] = x[static_cast<std::size_t>(i)];
  Vector y(a.rows());
  t.spmv(xv, y);
  for (Index i = 0; i < a.rows(); ++i) {
    EXPECT_NEAR(y[i], expect[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(Talon, CopyValuesFromRejectsPatternMismatch) {
  const Csr a = testing::banded(20, {-1, 1}, 1);
  const Csr b = testing::banded(20, {-2, 2}, 1);
  Talon t(a);
  EXPECT_THROW(t.copy_values_from(b), Error);
}

TEST(Talon, GetDiagonalMatchesCsr) {
  const Csr csr = testing::banded(45, {-4, -1, 1, 4});
  const Talon t(csr);
  Vector dt, dc;
  t.get_diagonal(dt);
  csr.get_diagonal(dc);
  ASSERT_EQ(dt.size(), dc.size());
  for (Index i = 0; i < dt.size(); ++i) EXPECT_EQ(dt[i], dc[i]);
}

TEST(Talon, EmptyMatrixAndEmptyRows) {
  const Csr empty;
  const Talon t0(empty);
  EXPECT_EQ(t0.num_panels(), 0);
  EXPECT_EQ(t0.num_blocks(), 0);
  Vector x(0), y(0);
  t0.spmv(x, y);  // must not crash

  const Csr holes = testing::with_empty_rows(32);
  const Talon t1(holes);
  const auto xs = random_x(32, 3);
  const auto expect = dense_spmv(holes, xs);
  Vector xv(32);
  for (Index i = 0; i < 32; ++i) xv[i] = xs[static_cast<std::size_t>(i)];
  Vector yv(32, -7.0);
  t1.spmv(xv, yv);
  for (Index i = 0; i < 32; ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST(Talon, EdgeBlockAtLastColumnIsMasked) {
  // n = 13 (not a multiple of 8) with the last column populated: the final
  // block starts above n-8 and must not read x out of bounds (ASan-fatal
  // if it does).
  Coo coo(13, 13);
  for (Index i = 0; i < 13; ++i) {
    coo.add(i, i, 2.0);
    coo.add(i, 12, 1.0);
  }
  const Csr csr = coo.to_csr();
  const Talon t(csr);
  const auto xs = random_x(13, 29);
  const auto expect = dense_spmv(csr, xs);
  Vector xv(13);
  for (Index i = 0; i < 13; ++i) xv[i] = xs[static_cast<std::size_t>(i)];
  Vector yv(13);
  for (auto tier : {simd::IsaTier::kScalar, simd::detect_best_tier()}) {
    Talon tt(csr);
    tt.set_tier(tier);
    tt.spmv(xv, yv);
    for (Index i = 0; i < 13; ++i) {
      EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11);
    }
  }
}

TEST(Talon, TrafficFormulaMatchesGeometry) {
  app::GrayScott gs(12);
  Vector u;
  gs.initial_condition(u);
  const Csr csr = gs.rhs_jacobian(u);
  const Talon t(csr);
  const std::size_t expected =
      8 * static_cast<std::size_t>(t.nnz()) +
      8 * static_cast<std::size_t>(t.num_blocks()) +
      12 * static_cast<std::size_t>(t.num_panels()) +
      8 * static_cast<std::size_t>(t.cols()) +
      8 * static_cast<std::size_t>(t.rows());
  EXPECT_EQ(t.spmv_traffic_bytes(), expected);
  // No padding: value storage is exactly 8 bytes per logical nonzero, and
  // total traffic beats the CSR 12nnz+24m+8n model on this operator.
  EXPECT_GT(t.storage_bytes(), 8 * static_cast<std::size_t>(t.nnz()));
  EXPECT_LT(t.spmv_traffic_bytes(), csr.spmv_traffic_bytes());
}

TEST(Talon, RejectsBadForceR) {
  const Csr csr = testing::banded(10, {-1, 1});
  TalonOptions opts;
  opts.force_r = 3;
  EXPECT_THROW(Talon(csr, opts), Error);
}

}  // namespace
}  // namespace kestrel::mat
