// SELF-TEST FIXTURE — a registered kernel TU with no Argus annotations at
// all: no `// argus-contract:` header and no per-kernel contract. The
// lint gate requires every kernel TU to carry both.
//
// expect-violation: contract :: lacks an
// expect-violation: contract :: carries no argus-kernel

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat::kernels {

namespace {

void csr_spmv_scalar(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    for (Index k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      sum += a.val[k] * x[a.colidx[k]];
    }
    y[i] = sum;
  }
}

}  // namespace

void register_missing_contract_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kScalar, csr_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
