#include "pc/sor.hpp"

#include "base/error.hpp"
#include "mat/csr.hpp"

namespace kestrel::pc {

Sor::Sor(const mat::Csr& a, Scalar omega, Sweep sweep, int iterations)
    : a_(a), omega_(omega), sweep_(sweep), iterations_(iterations) {
  KESTREL_CHECK(a.rows() == a.cols(), "sor: matrix must be square");
  KESTREL_CHECK(omega > 0.0 && omega < 2.0, "sor: omega must be in (0, 2)");
  KESTREL_CHECK(iterations >= 1, "sor: iterations must be >= 1");
  a.get_diagonal(diag_);
  for (Index i = 0; i < diag_.size(); ++i) {
    KESTREL_CHECK(diag_[i] != 0.0, "sor: zero diagonal");
  }
}

// Gauss–Seidel style sweeps solving (D/omega + L) z = r (forward) or
// (D/omega + U) z = r (backward), updating z in place.
void Sor::forward_sweep(const Vector& r, Vector& z) const {
  const Index n = a_.rows();
  for (Index i = 0; i < n; ++i) {
    Scalar sum = r[i];
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i) sum -= vals[k] * z[cols[k]];
    }
    z[i] = (1.0 - omega_) * z[i] + omega_ * sum / diag_[i];
  }
}

void Sor::backward_sweep(const Vector& r, Vector& z) const {
  for (Index i = a_.rows() - 1; i >= 0; --i) {
    Scalar sum = r[i];
    const auto cols = a_.row_cols(i);
    const auto vals = a_.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] != i) sum -= vals[k] * z[cols[k]];
    }
    z[i] = (1.0 - omega_) * z[i] + omega_ * sum / diag_[i];
  }
}

void Sor::apply(const Vector& r, Vector& z) const {
  KESTREL_CHECK(r.size() == a_.rows(), "sor: size mismatch");
  z.resize(r.size());
  z.set(0.0);
  for (int sweep = 0; sweep < iterations_; ++sweep) {
    if (sweep_ == Sweep::kForward || sweep_ == Sweep::kSymmetric) {
      forward_sweep(r, z);
    }
    if (sweep_ == Sweep::kBackward || sweep_ == Sweep::kSymmetric) {
      backward_sweep(r, z);
    }
  }
}

}  // namespace kestrel::pc
