#include "mat/sell.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "base/error.hpp"
#include "mat/csr.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

Sell::Sell(const Csr& csr, SellOptions opts) { build(csr, opts); }

void Sell::build(const Csr& csr, const SellOptions& opts) {
  KESTREL_CHECK(opts.slice_height >= 1 && opts.slice_height <= 64,
                "slice height must be in [1, 64]");
  KESTREL_CHECK(opts.sigma >= 1, "sigma must be >= 1");
  m_ = csr.rows();
  n_ = csr.cols();
  c_ = opts.slice_height;
  sigma_ = opts.sigma;
  nnz_ = csr.nnz();
  nslices_ = m_ == 0 ? 0 : (m_ + c_ - 1) / c_;

  // Row order: identity, or SELL-C-sigma local sorting by descending row
  // length within windows of `sigma` rows (section 5.4).
  perm_.clear();
  if (sigma_ > 1) {
    perm_.resize(static_cast<std::size_t>(m_));
    std::iota(perm_.begin(), perm_.end(), Index{0});
    for (Index w = 0; w < m_; w += sigma_) {
      const Index we = std::min<Index>(w + sigma_, m_);
      std::stable_sort(perm_.begin() + w, perm_.begin() + we,
                       [&csr](Index a, Index b) {
                         return csr.row_nnz(a) > csr.row_nnz(b);
                       });
    }
  }
  auto logical_row = [this](Index p) {
    return perm_.empty() ? p : perm_[static_cast<std::size_t>(p)];
  };

  // Slice lengths = max row length in each slice; padded rows contribute 0.
  rlen_.resize(static_cast<std::size_t>(m_));
  sliceptr_.resize(static_cast<std::size_t>(nslices_) + 1);
  sliceptr_[0] = 0;
  std::int64_t total = 0;
  for (Index s = 0; s < nslices_; ++s) {
    Index slice_len = 0;
    for (Index lane = 0; lane < c_; ++lane) {
      const Index p = s * c_ + lane;
      if (p >= m_) break;
      const Index len = csr.row_nnz(logical_row(p));
      rlen_[static_cast<std::size_t>(p)] = len;
      slice_len = std::max(slice_len, len);
    }
    total += static_cast<std::int64_t>(slice_len) * c_;
    KESTREL_CHECK(total <= std::numeric_limits<Index>::max(),
                  "SELL storage exceeds 32-bit indexing; shrink the local "
                  "block or rebuild with 64-bit Index");
    sliceptr_[static_cast<std::size_t>(s) + 1] = static_cast<Index>(total);
  }

  val_.resize(static_cast<std::size_t>(total));
  colidx_.resize(static_cast<std::size_t>(total));
  val_.fill(0.0);

  // Fill slice-column-major. Padded entries get value 0 and a column index
  // copied from the row's last real entry (section 5.5) so gathers stay on
  // addresses the row already touches and — in the parallel off-diagonal
  // case — never reference a ghost entry the row does not own.
  for (Index s = 0; s < nslices_; ++s) {
    const Index base = sliceptr_[static_cast<std::size_t>(s)];
    const Index width = (sliceptr_[static_cast<std::size_t>(s) + 1] - base) / c_;
    for (Index lane = 0; lane < c_; ++lane) {
      const Index p = s * c_ + lane;
      const bool real_row = p < m_;
      const Index r = real_row ? logical_row(p) : 0;
      const Index len = real_row ? csr.row_nnz(r) : 0;
      const auto cols = real_row ? csr.row_cols(r) : std::span<const Index>{};
      const auto vals =
          real_row ? csr.row_vals(r) : std::span<const Scalar>{};
      const Index padcol = len > 0 ? cols[static_cast<std::size_t>(len - 1)]
                                   : Index{0};
      for (Index j = 0; j < width; ++j) {
        const Index k = base + j * c_ + lane;
        if (j < len) {
          colidx_[static_cast<std::size_t>(k)] =
              cols[static_cast<std::size_t>(j)];
          val_[static_cast<std::size_t>(k)] =
              vals[static_cast<std::size_t>(j)];
        } else {
          colidx_[static_cast<std::size_t>(k)] = padcol;
        }
      }
    }
  }

  if (opts.build_bitmask) {
    KESTREL_CHECK(c_ <= 64, "bitmask variant requires slice height <= 64");
    bitmask_.resize(static_cast<std::size_t>(total / c_));
    for (Index s = 0; s < nslices_; ++s) {
      const Index base = sliceptr_[static_cast<std::size_t>(s)];
      const Index width =
          (sliceptr_[static_cast<std::size_t>(s) + 1] - base) / c_;
      for (Index j = 0; j < width; ++j) {
        std::uint64_t mask = 0;
        for (Index lane = 0; lane < c_; ++lane) {
          const Index p = s * c_ + lane;
          if (p < m_ && j < rlen_[static_cast<std::size_t>(p)]) {
            mask |= std::uint64_t{1} << lane;
          }
        }
        bitmask_[static_cast<std::size_t>((base + j * c_) / c_)] = mask;
      }
    }
  } else {
    bitmask_.resize(0);
  }
  repartition(par::configured_threads());
}

void Sell::repartition(int nparts) {
  part_ = nnz_balance(sliceptr_.data(), nslices_, nparts);
}

void Sell::run_partitioned(simd::SellSpmvFn fn, const Scalar* x,
                           Scalar* out) const {
  if (part_.nparts() <= 1) {
    fn(view(), x, out);
    return;
  }
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index s0 = part_.begin(p);
    const Index s1 = part_.end(p);
    if (s0 == s1) return;
    // Slice s0+s' becomes local slice s': the kernel derives row0 = s'*c, so
    // output shifts by s0*c and the local m clips the final partial slice.
    // sliceptr values stay absolute into colidx/val (and the bitmask, which
    // kernels index by absolute element position), so those pointers do not
    // move.
    const Index row0 = s0 * c_;
    const Index local_m = std::min(m_ - row0, (s1 - s0) * c_);
    const SellView sub{local_m,
                       n_,
                       c_,
                       s1 - s0,
                       sliceptr_.data() + s0,
                       colidx_.data(),
                       val_.data(),
                       rlen_.data(),
                       bitmask_.empty() ? nullptr : bitmask_.data()};
    fn(sub, x, out + row0);
  });
}

void Sell::spmv(const Scalar* x, Scalar* y) const {
  if (slim_.active()) {
    spmv_slim(x, y);
    return;
  }
  spmv_fat(x, y);
}

void Sell::spmv_wide(const Scalar* x, Scalar* y) const { spmv_fat(x, y); }

void Sell::spmv_fat(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(sell)", 2 * nnz(), fat_spmv_traffic_bytes());
  // Kernel tier constraints: the AVX-512 kernel needs c % 8 == 0, the
  // AVX/AVX2 kernels need c % 4 == 0; anything else runs scalar.
  simd::IsaTier want = tier_;
  if (want == simd::IsaTier::kAvx512 && c_ % 8 != 0) {
    want = simd::IsaTier::kAvx2;
  }
  if ((want == simd::IsaTier::kAvx2 || want == simd::IsaTier::kAvx) &&
      c_ % 4 != 0) {
    want = simd::IsaTier::kScalar;
  }
  auto fn = simd::lookup_as<simd::SellSpmvFn>(simd::Op::kSellSpmv, want);
  if (perm_.empty()) {
    run_partitioned(fn, x, y);
    return;
  }
  sorted_tmp_.resize(m_);
  run_partitioned(fn, x, sorted_tmp_.data());
  spmv_sorted_fixup(y);
}

void Sell::spmv_slim(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(sell_slim)", 2 * nnz(), spmv_traffic_bytes());
  // The slim AVX-512 kernel is written for the production slice height
  // c == 8 only; other heights take the scalar slim kernel (lookup_as
  // falls through the unregistered AVX2/AVX tiers by itself).
  const simd::IsaTier want = c_ == 8 ? tier_ : simd::IsaTier::kScalar;
  auto fn =
      simd::lookup_as<simd::SellSlimSpmvFn>(simd::Op::kSellSlimSpmv, want);
  if (perm_.empty()) {
    run_partitioned_slim(fn, x, y);
    return;
  }
  sorted_tmp_.resize(m_);
  run_partitioned_slim(fn, x, sorted_tmp_.data());
  spmv_sorted_fixup(y);
}

void Sell::run_partitioned_slim(simd::SellSlimSpmvFn fn, const Scalar* x,
                                Scalar* out) const {
  const SellSlimView v = slim_view();
  if (part_.nparts() <= 1) {
    fn(v, x, out);
    return;
  }
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index s0 = part_.begin(p);
    const Index s1 = part_.end(p);
    if (s0 == s1) return;
    // Same shift rules as the fat sub-view; base is indexed per slice, so
    // it moves with sliceptr while the element streams stay absolute.
    const Index row0 = s0 * c_;
    SellSlimView sub = v;
    sub.m = std::min(m_ - row0, (s1 - s0) * c_);
    sub.nslices = s1 - s0;
    sub.sliceptr = v.sliceptr + s0;
    if (v.base != nullptr) sub.base = v.base + s0;
    fn(sub, x, out + row0);
  });
}

SellSlimView Sell::slim_view() const {
  return {m_,
          n_,
          c_,
          nslices_,
          slim_.idx16() ? Index{1} : Index{0},
          slim_.fp32() ? Index{1} : Index{0},
          sliceptr_.data(),
          colidx_.data(),
          val_.data(),
          slim_.idx16() ? slim_.base() : nullptr,
          slim_.idx16() ? slim_.off16() : nullptr,
          slim_.fp32() ? slim_.val32() : nullptr};
}

bool Sell::set_slim(const SlimOptions& opts) {
  // Segments are whole slices: the padded entries carry in-row column
  // indices, so the slice-wide column span is what must fit 16 bits.
  return slim_.attach(opts, sliceptr_.data(), nslices_, colidx_.data(),
                      val_.data(), val_.size(), 1);
}

void Sell::spmv_add(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMultAdd(sell)", 2 * nnz(), fat_spmv_traffic_bytes());
  simd::IsaTier want = tier_;
  if (want == simd::IsaTier::kAvx512 && c_ % 8 != 0) {
    want = simd::IsaTier::kAvx2;
  }
  if ((want == simd::IsaTier::kAvx2 || want == simd::IsaTier::kAvx) &&
      c_ % 4 != 0) {
    want = simd::IsaTier::kScalar;
  }
  KESTREL_CHECK(perm_.empty(), "spmv_add does not support sigma sorting");
  auto fn = simd::lookup_as<simd::SellSpmvAddFn>(simd::Op::kSellSpmvAdd, want);
  run_partitioned(fn, x, y);
}

void Sell::spmv_bitmask(const Scalar* x, Scalar* y) const {
  KESTREL_CHECK(has_bitmask(), "bitmask kernel requires build_bitmask");
  simd::IsaTier want = tier_;
  if (want != simd::IsaTier::kScalar) {
    // only scalar and AVX-512 masked variants exist
    want = (c_ % 8 == 0) ? simd::IsaTier::kAvx512 : simd::IsaTier::kScalar;
  }
  auto fn =
      simd::lookup_as<simd::SellSpmvFn>(simd::Op::kSellSpmvBitmask, want);
  if (perm_.empty()) {
    run_partitioned(fn, x, y);
    return;
  }
  sorted_tmp_.resize(m_);
  run_partitioned(fn, x, sorted_tmp_.data());
  spmv_sorted_fixup(y);
}

void Sell::spmv_prefetch(const Scalar* x, Scalar* y) const {
  simd::IsaTier want =
      (c_ == 8) ? tier_ : simd::IsaTier::kScalar;
  auto fn = simd::lookup_as<simd::SellSpmvFn>(simd::Op::kSellSpmvPrefetch,
                                              want);
  if (perm_.empty()) {
    fn(view(), x, y);
    return;
  }
  sorted_tmp_.resize(m_);
  fn(view(), x, sorted_tmp_.data());
  spmv_sorted_fixup(y);
}

void Sell::spmv_sorted_fixup(Scalar* y) const {
  // Scatter back to logical row order. perm_ is a permutation, so the
  // partition's row ranges write disjoint y entries; the same slice bounds
  // as the multiply keep the pool's part->thread mapping aligned.
  if (part_.nparts() <= 1) {
    for (Index p = 0; p < m_; ++p) {
      y[perm_[static_cast<std::size_t>(p)]] = sorted_tmp_[p];
    }
    return;
  }
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int part, int) {
    const Index p0 = part_.begin(part) * c_;
    const Index p1 = std::min(part_.end(part) * c_, m_);
    for (Index p = p0; p < p1; ++p) {
      y[perm_[static_cast<std::size_t>(p)]] = sorted_tmp_[p];
    }
  });
}

void Sell::abft_col_checksum(Vector& c) const {
  c.resize(n_);
  c.set(0.0);
  // rlen bounds the walk to real entries, so padding (whatever column index
  // it carries) never contributes.
  for (Index p = 0; p < m_; ++p) {
    const Index s = p / c_;
    const Index lane = p % c_;
    const Index base = sliceptr_[static_cast<std::size_t>(s)];
    for (Index j = 0; j < rlen_[static_cast<std::size_t>(p)]; ++j) {
      const std::size_t k = static_cast<std::size_t>(base + j * c_ + lane);
      c[colidx_[k]] += val_[k];
    }
  }
}

void Sell::get_diagonal(Vector& d) const {
  KESTREL_CHECK(m_ == n_, "get_diagonal requires a square matrix");
  d.resize(m_);
  d.set(0.0);
  for (Index p = 0; p < m_; ++p) {
    const Index r = perm(p);
    const Index s = p / c_;
    const Index lane = p % c_;
    const Index base = sliceptr_[static_cast<std::size_t>(s)];
    for (Index j = 0; j < rlen_[static_cast<std::size_t>(p)]; ++j) {
      const Index k = base + j * c_ + lane;
      if (colidx_[static_cast<std::size_t>(k)] == r) {
        d[r] = val_[static_cast<std::size_t>(k)];
        break;
      }
    }
  }
}

std::size_t Sell::storage_bytes() const {
  return sliceptr_.size() * sizeof(Index) + colidx_.size() * sizeof(Index) +
         val_.size() * sizeof(Scalar) + rlen_.size() * sizeof(Index) +
         perm_.size() * sizeof(Index) +
         bitmask_.size() * sizeof(std::uint64_t);
}

// argus-traffic-model: sell
// argus-traffic-stream: val = 8 * nnz
// argus-traffic-stream: colidx = 4 * nnz
// argus-traffic-stream: sliceptr = 2 * m : conv
// argus-traffic-stream: y = 8 * m
// argus-traffic-stream: x = 8 * n
// argus-traffic-bind: nnz() = nnz
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: fat_spmv_traffic_bytes
std::size_t Sell::fat_spmv_traffic_bytes() const {
  // Paper section 6: 12*nnz + 10*m + 8*n bytes — the slice pointer array is
  // only m/8 integers, rlen is not touched by SpMV, so per-row metadata
  // shrinks from 24 to 10 bytes. Padded zeros are deliberately NOT counted
  // ("extra memory overhead contributed by padded zeros are not counted").
  return static_cast<std::size_t>(12 * nnz()) +
         10 * static_cast<std::size_t>(m_) + 8 * static_cast<std::size_t>(n_);
}

// Kestrel Slim traffic: 6 B per stored element (4 fp32 value + 2 offset)
// plus one 4-byte base column per slice; the fat colidx/val streams are not
// touched in this mode (`alt`).
// argus-traffic-model: sell_slim
// argus-traffic-stream: val32 = 4 * nnz : esize 4
// argus-traffic-stream: off16 = 2 * nnz : esize 2
// argus-traffic-stream: base = 4 * nslices
// argus-traffic-stream: sliceptr = 2 * m : conv
// argus-traffic-stream: y = 8 * m
// argus-traffic-stream: x = 8 * n
// argus-traffic-stream: colidx = 0 : alt
// argus-traffic-stream: val = 0 : alt
// argus-traffic-bind: nnz() = nnz
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-bind: nslices_ = nslices
// argus-traffic-cpp: slim_spmv_traffic_bytes
std::size_t Sell::slim_spmv_traffic_bytes() const {
  return static_cast<std::size_t>(6 * nnz()) +
         10 * static_cast<std::size_t>(m_) +
         4 * static_cast<std::size_t>(nslices_) +
         8 * static_cast<std::size_t>(n_);
}

std::size_t Sell::spmv_traffic_bytes() const {
  if (!slim_.active()) return fat_spmv_traffic_bytes();
  if (slim_.idx16() && slim_.fp32()) return slim_spmv_traffic_bytes();
  const std::size_t vb = slim_.fp32() ? 4 : 8;
  const std::size_t ib = slim_.idx16() ? 2 : 4;
  const std::size_t base_bytes =
      slim_.idx16() ? 4 * static_cast<std::size_t>(nslices_) : 0;
  return (vb + ib) * static_cast<std::size_t>(nnz()) +
         10 * static_cast<std::size_t>(m_) + base_bytes +
         8 * static_cast<std::size_t>(n_);
}

void Sell::copy_values_from(const Csr& csr) {
  KESTREL_CHECK(csr.rows() == m_ && csr.cols() == n_ && csr.nnz() == nnz_,
                "copy_values_from: shape mismatch");
  for (Index p = 0; p < m_; ++p) {
    const Index r = perm(p);
    KESTREL_CHECK(csr.row_nnz(r) == rlen_[static_cast<std::size_t>(p)],
                  "copy_values_from: row length changed");
    const auto cols = csr.row_cols(r);
    const auto vals = csr.row_vals(r);
    const Index s = p / c_;
    const Index lane = p % c_;
    const Index base = sliceptr_[static_cast<std::size_t>(s)];
    for (Index j = 0; j < rlen_[static_cast<std::size_t>(p)]; ++j) {
      const Index k = base + j * c_ + lane;
      KESTREL_CHECK(colidx_[static_cast<std::size_t>(k)] ==
                        cols[static_cast<std::size_t>(j)],
                    "copy_values_from: sparsity pattern changed");
      val_[static_cast<std::size_t>(k)] = vals[static_cast<std::size_t>(j)];
    }
  }
  slim_.refresh_values(val_.data(), val_.size());
}

Csr Sell::to_csr() const {
  std::vector<Index> rowptr(static_cast<std::size_t>(m_) + 1, 0);
  for (Index p = 0; p < m_; ++p) {
    rowptr[static_cast<std::size_t>(perm(p)) + 1] =
        rlen_[static_cast<std::size_t>(p)];
  }
  for (Index i = 0; i < m_; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] +=
        rowptr[static_cast<std::size_t>(i)];
  }
  const std::size_t total = static_cast<std::size_t>(
      m_ == 0 ? 0 : rowptr[static_cast<std::size_t>(m_)]);
  std::vector<Index> colidx(total);
  std::vector<Scalar> val(total);
  for (Index p = 0; p < m_; ++p) {
    const Index r = perm(p);
    const Index s = p / c_;
    const Index lane = p % c_;
    const Index base = sliceptr_[static_cast<std::size_t>(s)];
    Index dst = rowptr[static_cast<std::size_t>(r)];
    for (Index j = 0; j < rlen_[static_cast<std::size_t>(p)]; ++j, ++dst) {
      const Index k = base + j * c_ + lane;
      colidx[static_cast<std::size_t>(dst)] =
          colidx_[static_cast<std::size_t>(k)];
      val[static_cast<std::size_t>(dst)] = val_[static_cast<std::size_t>(k)];
    }
  }
  return Csr(m_, n_, std::move(rowptr), std::move(colidx), std::move(val));
}

}  // namespace kestrel::mat
