#include "par/checker.hpp"

#include <sstream>

#include "base/error.hpp"

namespace kestrel::par {

namespace {
constexpr std::size_t kMaxTraceEvents = 512;
}  // namespace

const char* fabric_event_name(FabricEventKind kind) {
  switch (kind) {
    case FabricEventKind::kIsend:
      return "isend";
    case FabricEventKind::kIrecvPost:
      return "irecv";
    case FabricEventKind::kWait:
      return "wait";
    case FabricEventKind::kRecv:
      return "recv";
    case FabricEventKind::kBarrier:
      return "barrier";
    case FabricEventKind::kAllreduce:
      return "allreduce";
    case FabricEventKind::kAllgatherv:
      return "allgatherv";
    case FabricEventKind::kChannelOpen:
      return "channel-open";
    case FabricEventKind::kChannelArm:
      return "channel-arm";
    case FabricEventKind::kChannelSend:
      return "channel-send";
    case FabricEventKind::kChannelComplete:
      return "channel-complete";
    case FabricEventKind::kRankExit:
      return "rank-exit";
  }
  return "?";
}

FabricChecker::FabricChecker(int nranks)
    : ranks_(static_cast<std::size_t>(nranks)) {}

void FabricChecker::record(FabricEventKind kind, int rank, int peer,
                           int tag) {
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  events_.push_back(FabricEvent{kind, rank, peer, tag, rs.next_seq++});
  if (events_.size() > kMaxTraceEvents) events_.pop_front();
}

std::string FabricChecker::trace_locked(std::size_t max_events) const {
  std::ostringstream os;
  const std::size_t n = events_.size();
  const std::size_t begin = n > max_events ? n - max_events : 0;
  os << "recent fabric events (oldest first";
  if (begin > 0) os << ", " << begin << " earlier omitted";
  os << "):";
  for (std::size_t i = begin; i < n; ++i) {
    const FabricEvent& e = events_[i];
    os << "\n  rank " << e.rank << " #" << e.seq << " "
       << fabric_event_name(e.kind);
    if (e.kind == FabricEventKind::kChannelOpen) {
      os << " nsend=" << e.peer << " nrecv=" << e.tag;
      continue;
    }
    if (e.kind == FabricEventKind::kChannelArm) {
      os << " nrecv=" << e.tag;
      continue;
    }
    if (e.peer >= 0) {
      os << ((e.kind == FabricEventKind::kIsend ||
              e.kind == FabricEventKind::kChannelSend)
                 ? " dest="
                 : " source=")
         << e.peer;
    }
    if (e.tag >= 0) os << " tag=" << e.tag;
  }
  return os.str();
}

std::string FabricChecker::trace(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_locked(max_events);
}

void FabricChecker::fail(const std::string& msg) const {
  // mu_ is held by the caller; the throw unwinds through the lock_guard.
  KESTREL_FAIL("fabric checker: " + msg + "\n" + trace_locked(16));
}

void FabricChecker::on_isend(int rank, int dest, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kIsend, rank, dest, tag);
}

std::uint64_t FabricChecker::on_irecv_post(int rank, int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kIrecvPost, rank, source, tag);
  const std::uint64_t id = next_request_id_++;
  ranks_[static_cast<std::size_t>(rank)].pending.push_back(
      PendingRecv{id, source, tag});
  return id;
}

void FabricChecker::on_wait(int rank, std::uint64_t request_id, int source,
                            int tag, bool request_done) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kWait, rank, source, tag);
  std::ostringstream ctx;
  ctx << "(rank " << rank << ", source=" << source << ", tag=" << tag << ")";
  if (request_done) {
    fail("double wait on request " + ctx.str());
  }
  auto& pending = ranks_[static_cast<std::size_t>(rank)].pending;
  for (auto it = pending.begin(); it != pending.end(); ++it) {
    if (it->id == request_id) {
      pending.erase(it);
      return;
    }
  }
  fail("wait on a request that was never posted by this rank, already "
       "waited on, or waited on via a copy " +
       ctx.str());
}

void FabricChecker::on_recv(int rank, int source, int tag) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kRecv, rank, source, tag);
}

void FabricChecker::on_channel_open(int rank, int nsend, int nrecv) {
  std::lock_guard<std::mutex> lock(mu_);
  // peer/tag carry the channel counts so the trace shows exchange shapes.
  record(FabricEventKind::kChannelOpen, rank, nsend, nrecv);
}

void FabricChecker::on_channel_arm(int rank, int nrecv) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kChannelArm, rank, -1, nrecv);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.pending_completions != 0) {
    std::ostringstream os;
    os << "rank " << rank << " re-armed a persistent exchange with "
       << rs.pending_completions
       << " undrained receive(s) from the previous round — a sender could "
          "overwrite ghost data the rank has not consumed yet";
    fail(os.str());
  }
  rs.pending_completions = static_cast<std::uint64_t>(nrecv);
}

void FabricChecker::on_channel_send(int rank, int dest) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kChannelSend, rank, dest, -1);
}

void FabricChecker::on_channel_complete(int rank, int source) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kChannelComplete, rank, source, -1);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.pending_completions == 0) {
    std::ostringstream os;
    os << "rank " << rank << " completed a persistent receive (source="
       << source << ") with no armed round — wait_any called more times "
          "than receives were posted";
    fail(os.str());
  }
  --rs.pending_completions;
}

void FabricChecker::on_collective(int rank, FabricEventKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  record(kind, rank, -1, -1);
  RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  const std::uint64_t round = rs.collective_round++;
  if (round >= collective_kind_.size()) {
    collective_kind_.push_back(kind);
    collective_first_rank_.push_back(rank);
    return;
  }
  const FabricEventKind expected =
      collective_kind_[static_cast<std::size_t>(round)];
  if (expected != kind) {
    std::ostringstream os;
    os << "mismatched collectives at round " << round << ": rank "
       << collective_first_rank_[static_cast<std::size_t>(round)]
       << " entered " << fabric_event_name(expected) << " while rank "
       << rank << " entered " << fabric_event_name(kind);
    fail(os.str());
  }
}

void FabricChecker::on_rank_exit(int rank) {
  std::lock_guard<std::mutex> lock(mu_);
  record(FabricEventKind::kRankExit, rank, -1, -1);
  const RankState& rs = ranks_[static_cast<std::size_t>(rank)];
  if (rs.pending_completions != 0) {
    std::ostringstream os;
    os << "rank " << rank << " exited Fabric::run with "
       << rs.pending_completions
       << " armed persistent receive(s) never completed";
    fail(os.str());
  }
  const auto& pending = rs.pending;
  if (pending.empty()) return;
  std::ostringstream os;
  os << "rank " << rank << " exited Fabric::run with " << pending.size()
     << " un-waited request(s):";
  for (const PendingRecv& p : pending) {
    os << " (source=" << p.source << ", tag=" << p.tag << ")";
  }
  fail(os.str());
}

}  // namespace kestrel::par
