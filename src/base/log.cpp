#include "base/log.hpp"

#include <iomanip>
#include <ostream>

#include "base/error.hpp"

namespace kestrel {

int EventLog::event_id(const std::string& name) {
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (events_[i].name == name) return static_cast<int>(i);
  }
  Event e;
  e.name = name;
  events_.push_back(e);
  return static_cast<int>(events_.size() - 1);
}

void EventLog::begin(int id) {
  auto& e = events_.at(static_cast<std::size_t>(id));
  KESTREL_CHECK(!e.running, "event '" + e.name + "' already running");
  e.running = true;
  e.started = std::chrono::steady_clock::now();
}

void EventLog::end(int id, std::uint64_t flops) {
  auto& e = events_.at(static_cast<std::size_t>(id));
  KESTREL_CHECK(e.running, "event '" + e.name + "' not running");
  e.running = false;
  e.seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             e.started)
                   .count();
  e.calls += 1;
  e.flops += flops;
}

double EventLog::seconds(int id) const {
  return events_.at(static_cast<std::size_t>(id)).seconds;
}

std::uint64_t EventLog::calls(int id) const {
  return events_.at(static_cast<std::size_t>(id)).calls;
}

std::uint64_t EventLog::flops(int id) const {
  return events_.at(static_cast<std::size_t>(id)).flops;
}

double EventLog::total_seconds() const {
  double t = 0.0;
  for (const auto& e : events_) t += e.seconds;
  return t;
}

void EventLog::reset() {
  for (auto& e : events_) {
    e.seconds = 0.0;
    e.calls = 0;
    e.flops = 0;
    e.running = false;
  }
}

void EventLog::report(std::ostream& os) const {
  os << std::left << std::setw(24) << "Event" << std::right << std::setw(10)
     << "Calls" << std::setw(14) << "Time (s)" << std::setw(14) << "MFlops"
     << std::setw(12) << "MF/s"
     << "\n";
  for (const auto& e : events_) {
    if (e.calls == 0) continue;
    const double mflops = static_cast<double>(e.flops) / 1e6;
    os << std::left << std::setw(24) << e.name << std::right << std::setw(10)
       << e.calls << std::setw(14) << std::fixed << std::setprecision(6)
       << e.seconds << std::setw(14) << std::setprecision(2) << mflops
       << std::setw(12)
       << (e.seconds > 0 ? mflops / e.seconds : 0.0) << "\n";
  }
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

double wall_time() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace kestrel
