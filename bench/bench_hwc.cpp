// Kestrel Pulse bench: MEASURED DRAM bytes and IPC per SpMV, swept over the
// format table (CSR / SELL / BCSR / Talon) on a bandwidth-bound Gray-Scott
// Jacobian, against the section-6 traffic model (spmv_traffic_bytes()).
// This is the model-vs-machine loop the counters exist for: the modeled
// bytes/row the roofline figures trust are checked against what the memory
// system actually moved.
//
// Tolerance gate (full runs on perf-capable hosts, hardware sources only):
// measured/model must land in [0.25, 4.0]. The window is deliberately wide
// and asymmetric — the LLC-miss x 64 fallback UNDERcounts when hardware
// prefetchers satisfy streams without recording misses, while write-
// allocate traffic on y and cold TLB/page walks OVERcount vs the model;
// the gate catches broken wiring (10-100x off), not calibration drift.
// Smoke runs skip the gate: a tiny matrix is cache-resident, so measured
// DRAM traffic is legitimately near zero.
//
// On hosts without perf access this prints an explicit
//   "hwc: skipped: no PMU access (<reason>)"
// line, still writes BENCH_hwc.json (hwc.available=false) and exits 0 —
// CI records the skip as an artifact line rather than silently passing.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mat/bcsr.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "perf/machine.hpp"
#include "prof/hwc.hpp"
#include "prof/report.hpp"

namespace {

using namespace kestrel;

struct FormatResult {
  std::string name;
  double model_bytes = 0.0;
  double measured_bytes = 0.0;
  double ratio = 0.0;
  double ipc = 0.0;
  double cycles_per_mult = 0.0;
};

/// Measures one format: counter delta around a timed multiply loop.
FormatResult measure(const std::string& name, const mat::Matrix& a) {
  FormatResult out;
  out.name = name;
  out.model_bytes = static_cast<double>(a.spmv_traffic_bytes());

  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  a.spmv(x.data(), y.data());  // warm up: page the matrix in

  // Pick reps for ~0.2 s of measurement so the counter deltas dwarf the
  // read_thread() syscall overhead at the endpoints.
  int reps = 2;
  if (!bench::smoke_mode()) {
    const double t1 = bench::time_spmv(a, 3, 0.02);
    reps = static_cast<int>(0.2 / t1) + 1;
    if (reps < 5) reps = 5;
  }
  const prof::hwc::Reading r0 = prof::hwc::read_thread();
  for (int r = 0; r < reps; ++r) {
    a.spmv(x.data(), y.data());
  }
  const prof::hwc::Reading r1 = prof::hwc::read_thread();
  volatile double sink = y[0];
  (void)sink;

  const prof::hwc::Reading d = prof::hwc::delta(r0, r1);
  if (!d.valid) return out;
  out.measured_bytes = static_cast<double>(d.dram_bytes) / reps;
  out.ratio = out.model_bytes > 0.0 ? out.measured_bytes / out.model_bytes
                                    : 0.0;
  out.ipc = d.cycles > 0 ? static_cast<double>(d.instructions) /
                               static_cast<double>(d.cycles)
                         : 0.0;
  out.cycles_per_mult = static_cast<double>(d.cycles) / reps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::header(
      "Kestrel Pulse: measured bytes & IPC vs the traffic model, by format");

  const bool available = prof::hwc::enable_if_capable();
  const prof::hwc::Capability& cap = prof::hwc::capability();
  const prof::hwc::Source source = prof::hwc::source();
  std::printf("cpu: %s\n", perf::host_cpu_model().c_str());
  std::printf("perf_event_paranoid: %d\n", cap.paranoid);
  if (available) {
    std::printf("hwc: source %s\n", prof::hwc::source_name(source));
  } else {
    // The explicit skip line CI greps for — never a silent pass.
    std::printf("hwc: skipped: no PMU access (%s)\n", cap.detail.c_str());
  }

  const mat::Csr csr = bench::gray_scott_matrix(bench::scaled(512, 48));
  std::printf("matrix: %d rows, %lld nnz (Gray-Scott, 10 per row)\n\n",
              csr.rows(), static_cast<long long>(csr.nnz()));

  std::vector<FormatResult> results;
  if (available) {
    const simd::IsaTier best = simd::detect_best_tier();
    {
      mat::Csr c2 = csr;
      c2.set_tier(best);
      results.push_back(measure("csr", c2));
    }
    {
      mat::Sell s2(csr);
      s2.set_tier(best);
      results.push_back(measure("sell", s2));
    }
    {
      mat::Bcsr b2(csr, 2);  // natural 2x2 dof blocks of Gray-Scott
      b2.set_tier(best);
      results.push_back(measure("bcsr", b2));
    }
    {
      mat::Talon t2(csr);
      t2.set_tier(best);
      results.push_back(measure("talon", t2));
    }

    std::printf("%-8s %14s %14s %8s %8s %14s\n", "format", "model B/mult",
                "meas B/mult", "ratio", "IPC", "cycles/mult");
    for (const FormatResult& r : results) {
      std::printf("%-8s %14.0f %14.0f %8.3f %8.2f %14.0f\n", r.name.c_str(),
                  r.model_bytes, r.measured_bytes, r.ratio, r.ipc,
                  r.cycles_per_mult);
    }
  }

  // Tolerance gate: hardware sources, full size only (see header comment).
  bool gate_failed = false;
  const bool hardware_source = source == prof::hwc::Source::kLlcFallback ||
                               source == prof::hwc::Source::kUncoreImc;
  if (available && hardware_source && !bench::smoke_mode()) {
    for (const FormatResult& r : results) {
      if (r.ratio < 0.25 || r.ratio > 4.0) {
        std::printf("GATE FAILED: %s measured/model = %.3f outside "
                    "[0.25, 4.0]\n",
                    r.name.c_str(), r.ratio);
        gate_failed = true;
      }
    }
    if (!gate_failed) {
      std::printf("\ngate ok: every format's measured bytes within "
                  "[0.25, 4.0] of spmv_traffic_bytes()\n");
    }
  }

  if (!bench::json_path().empty()) {
    // prof::kMetricsSchema artifact; write_json_metrics adds the hwc
    // capability block itself, so "available": false documents a skip.
    prof::Profiler log;
    log.set_metric("matrix_rows", static_cast<double>(csr.rows()));
    log.set_metric("matrix_nnz", static_cast<double>(csr.nnz()));
    log.set_metric("hwc/available", available ? 1.0 : 0.0);
    log.set_metric("hwc/paranoid", static_cast<double>(cap.paranoid));
    for (const FormatResult& r : results) {
      log.set_metric("bytes_model/" + r.name, r.model_bytes);
      log.set_metric("bytes_measured/" + r.name, r.measured_bytes);
      log.set_metric("bytes_ratio/" + r.name, r.ratio);
      log.set_metric("ipc/" + r.name, r.ipc);
      log.set_metric("cycles_per_mult/" + r.name, r.cycles_per_mult);
    }
    std::ofstream out(bench::json_path());
    if (!out.good()) {
      std::fprintf(stderr, "bench_hwc: cannot open %s\n",
                   bench::json_path().c_str());
      return 1;
    }
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("wrote %s\n", bench::json_path().c_str());
  }

  return gate_failed ? 1 : 0;
}
