// AVX-512 Kestrel Slim CSR SpMV — Algorithm 1 over the compressed streams.
//
// idx16 mode unpacks eight 16-bit column offsets per iteration with
// vpmovzxwd (_mm256_cvtepu16_epi32), adds the row's broadcast base column
// and gathers from x exactly like the fat kernel; fp32 mode loads eight
// floats and widens them with vcvtps2pd (_mm512_cvtps_pd) so the FMA and
// the accumulator stay double. Remainders reuse the fat kernel's masked
// tail (section 4: masks only when longer than 2 elements), with
// _mm_maskz_loadu_epi16 / _mm256_maskz_loadu_ps as the slim counterparts of
// the masked index/value loads.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_slim isa=avx512

namespace kestrel::mat::kernels {

namespace {

/// idx16 + fp32: base+off16 columns, float values, double accumulation.
inline Scalar row_dot_slim_if(Index b, const std::uint16_t* off,
                              const float* v32, Index len, const Scalar* x) {
  const __m256i vb = _mm256_set1_epi32(b);
  __m512d acc = _mm512_setzero_pd();
  Index k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(off + k));
    const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
    const __m512d vals = _mm512_cvtps_pd(_mm256_loadu_ps(v32 + k));
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = _mm512_reduce_add_pd(acc);
  const Index rem = len - k;
  if (rem > 2) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m128i raw = _mm_maskz_loadu_epi16(mask, off + k);
    const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
    const __m512d vals =
        _mm512_cvtps_pd(_mm256_maskz_loadu_ps(mask, v32 + k));
    const __m512d vx =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
    sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
  } else {
    for (; k < len; ++k) {
      const Scalar v = v32[k];
      sum += v * x[b + off[k]];
    }
  }
  return sum;
}

/// idx16 only: base+off16 columns, fat double values.
inline Scalar row_dot_slim_i(Index b, const std::uint16_t* off,
                             const Scalar* val, Index len, const Scalar* x) {
  const __m256i vb = _mm256_set1_epi32(b);
  __m512d acc = _mm512_setzero_pd();
  Index k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(off + k));
    const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
    const __m512d vals = _mm512_loadu_pd(val + k);
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = _mm512_reduce_add_pd(acc);
  const Index rem = len - k;
  if (rem > 2) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m128i raw = _mm_maskz_loadu_epi16(mask, off + k);
    const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
    const __m512d vals = _mm512_maskz_loadu_pd(mask, val + k);
    const __m512d vx =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
    sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
  } else {
    for (; k < len; ++k) sum += val[k] * x[b + off[k]];
  }
  return sum;
}

/// fp32 only: fat int32 columns, float values.
inline Scalar row_dot_slim_f(const Index* colidx, const float* v32, Index len,
                             const Scalar* x) {
  __m512d acc = _mm512_setzero_pd();
  Index k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colidx + k));
    const __m512d vals = _mm512_cvtps_pd(_mm256_loadu_ps(v32 + k));
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = _mm512_reduce_add_pd(acc);
  const Index rem = len - k;
  if (rem > 2) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, colidx + k);
    const __m512d vals =
        _mm512_cvtps_pd(_mm256_maskz_loadu_ps(mask, v32 + k));
    const __m512d vx =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
    sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
  } else {
    for (; k < len; ++k) {
      const Scalar v = v32[k];
      sum += v * x[colidx[k]];
    }
  }
  return sum;
}

// argus-kernel: csr_slim_spmv_avx512
// argus-param: a : view CsrSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr_slim
void csr_slim_spmv_avx512(const CsrSlimView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    const Index len = a.rowptr[i + 1] - begin;
    if (a.idx16 != 0) {
      const Index b = a.base[i];
      if (a.fp32 != 0) {
        y[i] = row_dot_slim_if(b, a.off16 + begin, a.val32 + begin, len, x);
      } else {
        y[i] = row_dot_slim_i(b, a.off16 + begin, a.val + begin, len, x);
      }
    } else {
      y[i] = row_dot_slim_f(a.colidx + begin, a.val32 + begin, len, x);
    }
  }
}

}  // namespace

void register_csr_slim_avx512() {
  KESTREL_REGISTER_KERNEL(kCsrSlimSpmv, kAvx512, csr_slim_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
