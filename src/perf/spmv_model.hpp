#pragma once
// Analytic SpMV performance model.
//
// Each kernel variant is characterized by two KNL-core constants — cycles
// per stored element and cycles per row (loop/reduction/remainder
// overhead) — calibrated against the paper's Figure 8 (kernel ranking and
// speedups on KNL at 64 ranks). Execution time is the smooth maximum of
//   t_mem = traffic_bytes / BW(procs, mode)   (section 6 traffic model)
//   t_cpu = cycles / (procs * freq)
// which reproduces the paper's qualitative findings: on KNL with MCDRAM the
// kernels are on the cusp of compute-bound so vectorization pays 2x; on
// DRAM or standard Xeons t_mem dominates and format barely matters
// (Figures 10 and 11).

#include <cstdint>

#include "perf/bwmodel.hpp"
#include "perf/commmodel.hpp"

namespace kestrel::perf {

enum class ModelFormat {
  kCsrBaseline,  ///< compiler-autovectorized CSR (PETSc default AIJ)
  kMklCsr,       ///< Intel MKL's CSR SpMV (10-20% behind the baseline)
  kCsrPerm,      ///< AIJPERM
  kCsr,          ///< hand-vectorized CSR (Algorithm 1), tier applies
  kSell,         ///< sliced ELLPACK (Algorithm 2), tier applies
  kTalon,        ///< SPC5-style beta(r,c) masked blocks, tier applies
};

const char* model_format_name(ModelFormat fmt);

/// Per-process (or global — the model is linear) SpMV workload.
struct SpmvWorkload {
  std::int64_t rows = 0;
  std::int64_t nnz = 0;
  std::int64_t stored = 0;  ///< incl. SELL padding; == nnz for CSR
  /// Talon block geometry (used only by ModelFormat::kTalon). 0 means
  /// "estimate": ~6 nonzeros per beta block and 2-row panels, the typical
  /// geometry of a 2-dof stencil operator like Gray-Scott.
  std::int64_t talon_blocks = 0;
  std::int64_t talon_panels = 0;

  /// The paper's Gray–Scott matrix on an n x n grid: 2 dof per node,
  /// exactly 10 stored elements per row, negligible SELL padding.
  static SpmvWorkload gray_scott(Index n);
  /// Workload divided over `parts` equal pieces.
  SpmvWorkload split(int parts) const;

  /// Section 6 minimum-traffic byte counts. The slim flags mirror the
  /// runtime storage options: `idx16` swaps each 4-byte column index for a
  /// 2-byte offset plus a 4-byte per-row (CSR) or per-slice (SELL) base;
  /// `fp32` halves the value stream to 4 bytes per stored element. Talon
  /// has no separate index stream, so only `fp32` applies there.
  std::size_t traffic_bytes(ModelFormat fmt, bool idx16 = false,
                            bool fp32 = false) const;
};

struct KernelCost {
  double cycles_per_element;
  double cycles_per_row;
};

/// Kestrel Flock intra-rank threading term. The pool splits a rank's kernel
/// cycles across `threads` workers at a measured `efficiency`
/// (t1 / (threads * tN); 1.0 = perfect scaling), so t_cpu divides by
/// threads * efficiency while t_mem is untouched: with one rank per core
/// the node's memory bandwidth is already fully subscribed, and in-rank
/// threads only help on the compute side of the roofline. Calibrate
/// `efficiency` from a measured 1-vs-N-thread SpMV (bench_fig10 does this
/// with the same matrices it times, bench_threads sweeps it per format).
struct ThreadModel {
  int threads = 1;
  double efficiency = 1.0;
};

/// Calibrated KNL-core costs (see implementation for the calibration
/// table and its provenance). `tier` is ignored for the baseline/MKL/perm
/// formats except that perm only has scalar and AVX-512 variants.
KernelCost kernel_cost(ModelFormat fmt, simd::IsaTier tier);

/// Modeled wall seconds of ONE SpMV over `workload` using `procs` ranks,
/// each running `flock` pool threads (null = serial ranks).
double modeled_spmv_seconds(const MachineProfile& machine, MemoryMode mode,
                            int procs, ModelFormat fmt, simd::IsaTier tier,
                            const SpmvWorkload& workload,
                            const ThreadModel* flock = nullptr);

/// Convenience: flop rate 2*nnz / t in Gflop/s.
double modeled_spmv_gflops(const MachineProfile& machine, MemoryMode mode,
                           int procs, ModelFormat fmt, simd::IsaTier tier,
                           const SpmvWorkload& workload);

/// Figure 10 model: the full Gray–Scott run (5 time steps, 6-level
/// multigrid-preconditioned GMRES, Jacobi smoothing) on `nodes` KNL nodes
/// with 64 ranks per node over a 16384^2 grid.
struct MultinodeEstimate {
  double total_seconds;
  double matmult_seconds;  ///< the hatched "MatMult kernel" share
  double comm_seconds = 0.0;  ///< halo-exchange share (alpha + beta*bytes)
};

/// `comm` (optional) supplies the per-message alpha/beta constants for the
/// halo-exchange term: 4 neighbor messages per linear iteration per
/// multigrid level, message size tracking the per-rank subdomain edge and
/// halving per level. The CommModel defaults reproduce the fixed
/// 250 us-per-level latency term this model used before calibration
/// existed; pass CommModel::measure_fabric() (what bench_comm records) or
/// interconnect constants to re-anchor the curve.
/// `flock` (optional) applies the intra-rank threading term to the MatMult
/// share only — the non-SpMV work does not run on the pool.
MultinodeEstimate modeled_multinode(const MachineProfile& machine,
                                    MemoryMode mode, int nodes,
                                    ModelFormat fmt, simd::IsaTier tier,
                                    Index grid_n = 16384, int time_steps = 5,
                                    int mg_levels = 6,
                                    const CommModel* comm = nullptr,
                                    const ThreadModel* flock = nullptr);

}  // namespace kestrel::perf
