#include "par/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <sstream>
#include <thread>

#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "par/checker.hpp"
#include "prof/profiler.hpp"

namespace kestrel::par {

namespace {
// Internal tags for collectives; user tags must be non-negative. Collective
// calls from the same source reuse these tags, and per-(source, tag) FIFO
// ordering keeps successive collectives correctly matched.
constexpr int kTagReduceUp = -1;
constexpr int kTagReduceDown = -2;
constexpr int kTagGatherUp = -3;
constexpr int kTagGatherDown = -4;

Scalar reduce2(Scalar a, Scalar b, Comm::ReduceOp op) {
  switch (op) {
    case Comm::ReduceOp::kSum:
      return a + b;
    case Comm::ReduceOp::kMax:
      return std::max(a, b);
    case Comm::ReduceOp::kMin:
      return std::min(a, b);
  }
  return a;
}

/// Describes a blocked matching-receive for hang reports, translating the
/// internal collective tags back into user-facing operation names. Always
/// names the offending channel's (src, dst, tag) so a fault-injection test
/// (or a user) can see exactly which link stalled.
std::string take_context(int self, int source, int tag) {
  std::ostringstream os;
  switch (tag) {
    case kTagReduceUp:
    case kTagReduceDown:
      os << "allreduce/barrier";
      break;
    case kTagGatherUp:
    case kTagGatherDown:
      os << "allgatherv";
      break;
    default:
      os << "recv";
      break;
  }
  os << " (src=" << source << ", dst=" << self << ", tag=" << tag << ")";
  return os.str();
}

/// Bounded cooperative spin before parking on a persistent channel. The
/// fabric is oversubscribed by design (ranks are threads, usually more of
/// them than cores), so sched_yield hands the core straight to a runnable
/// peer — which typically arms or delivers within a few yields — whereas
/// parking costs two futex syscalls here plus a third in the peer's notify.
/// Bounded so a genuinely slow peer still puts this rank properly to sleep.
template <class Pred>
bool spin_before_park(const Pred& ready) {
  constexpr int kSpinYields = 32;
  for (int i = 0; i < kSpinYields; ++i) {
    if (ready()) return true;
    std::this_thread::yield();
  }
  return ready();
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

/// One persistent SPSC channel (Kestrel Slipstream). The receiver owns
/// `dest`/`recv_count` (registered once at open); the armed/delivered
/// counter pair is the entire steady-state protocol:
///
///   receiver arm round k:   armed.store(k)        (dest writable)
///   sender   send round k:  wait armed >= k; memcpy(dest, packed, ...);
///                           delivered.store(k)    (dest readable)
///   receiver wait_any:      sees delivered >= k   (data already in place)
///
/// Both counters are seq_cst because they each participate in a Dekker-style
/// flag handshake with a parked-waiter flag (sender_parked here, the
/// receiver's Doorbell::parked in Fabric): the writer bumps its counter and
/// then checks the peer's parked flag, the waiter raises its flag and then
/// re-checks the counter, and seq_cst is what forbids both sides reading
/// stale values at once (a lost wakeup). The mutex/condvar is touched only
/// when a side actually has to park — the fast path is two atomic ops.
struct GhostChannel {
  int src = -1;
  int dst = -1;
  Scalar* dest = nullptr;  ///< receiver-registered in-place slice
  Index recv_count = 0;
  std::atomic<std::uint64_t> armed{0};
  std::atomic<std::uint64_t> delivered{0};
  /// Aegis end-to-end payload checksum of the current round's slice,
  /// written (relaxed) before the delivered bump that publishes it; the
  /// receiver validates it in wait_any when a fault plan is attached.
  std::atomic<std::uint64_t> xsum{0};
  std::atomic<int> sender_parked{0};
  std::mutex mu;  ///< parking only; never taken on the fast path
  std::condition_variable cv;
};

FabricOptions::FabricOptions() {
#if defined(KESTREL_FABRIC_CHECK_DEFAULT)
  constexpr bool kBuildDefault = KESTREL_FABRIC_CHECK_DEFAULT != 0;
#elif defined(NDEBUG)
  constexpr bool kBuildDefault = false;
#else
  constexpr bool kBuildDefault = true;
#endif
  check = env_flag("KESTREL_FABRIC_CHECK", kBuildDefault);
  hang_timeout_s = 30.0;
  if (const char* v = std::getenv("KESTREL_FABRIC_HANG_TIMEOUT")) {
    hang_timeout_s = std::strtod(v, nullptr);
  }
  // Millisecond override (Kestrel Aegis): fault-injection tests need short
  // bounded waits without flaking the second-granularity knob above.
  if (const char* v = std::getenv("KESTREL_FABRIC_TIMEOUT_MS")) {
    hang_timeout_s = std::strtod(v, nullptr) / 1000.0;
  }
  faults = aegis::FaultPlan::from_env();
}

// ---- Comm ------------------------------------------------------------

FabricChecker* Comm::checker() const { return fabric_->checker_.get(); }

void Comm::isend(int dest, int tag, const std::vector<Scalar>& data) {
  isend(dest, tag, data.data(), data.size());
}

void Comm::isend(int dest, int tag, const Scalar* data, std::size_t count) {
  KESTREL_CHECK(dest >= 0 && dest < size_, "isend: bad destination rank");
  KESTREL_CHECK(tag >= 0, "isend: user tags must be non-negative");
  if (FabricChecker* chk = checker()) chk->on_isend(rank_, dest, tag);
  // Send-side accounting only, so a message is never counted twice.
  if (prof::enabled()) {
    prof::current().message(1, count * sizeof(Scalar));
  }
  fabric_->deliver(dest, rank_, tag,
                   std::vector<Scalar>(data, data + count));
}

void Comm::isend_indices(int dest, int tag, const std::vector<Index>& data) {
  KESTREL_CHECK(dest >= 0 && dest < size_,
                "isend_indices: bad destination rank");
  KESTREL_CHECK(tag >= 0, "isend_indices: user tags must be non-negative");
  if (FabricChecker* chk = checker()) chk->on_isend(rank_, dest, tag);
  if (prof::enabled()) {
    prof::current().message(1, data.size() * sizeof(Index));
  }
  fabric_->deliver(dest, rank_, tag, data);
}

Request Comm::irecv(int source, int tag, std::vector<Scalar>* sink) {
  KESTREL_CHECK(source >= 0 && source < size_, "irecv: bad source rank");
  KESTREL_CHECK(tag >= 0, "irecv: user tags must be non-negative");
  KESTREL_CHECK(sink != nullptr, "irecv: null sink");
  Request req{source, tag, sink, false, 0};
  if (FabricChecker* chk = checker()) {
    req.id = chk->on_irecv_post(rank_, source, tag);
  }
  return req;
}

void Comm::wait(Request& req) {
  // The checker (when attached) reports double-wait and foreign requests
  // with rank/source/tag context and a trace; the plain check below is the
  // always-on release-mode backstop.
  if (FabricChecker* chk = checker()) {
    chk->on_wait(rank_, req.id, req.source, req.tag, req.done);
  }
  KESTREL_CHECK(req.sink != nullptr && !req.done,
                "wait: invalid request (already waited on, or "
                "default-constructed)");
  *req.sink = fabric_->take(rank_, req.source, req.tag);
  req.done = true;
}

std::vector<Scalar> Comm::recv(int source, int tag) {
  KESTREL_CHECK(source >= 0 && source < size_, "recv: bad source rank");
  if (FabricChecker* chk = checker()) chk->on_recv(rank_, source, tag);
  return fabric_->take(rank_, source, tag);
}

std::vector<Index> Comm::recv_indices(int source, int tag) {
  KESTREL_CHECK(source >= 0 && source < size_,
                "recv_indices: bad source rank");
  if (FabricChecker* chk = checker()) chk->on_recv(rank_, source, tag);
  return fabric_->take_indices(rank_, source, tag);
}

Scalar Comm::allreduce(Scalar value, ReduceOp op) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllreduce);
  }
  // Counted at the public entry points only: the _impl bodies move their
  // payloads through fabric_->deliver directly, so nothing double-counts.
  if (prof::enabled()) prof::current().reduction();
  return allreduce_impl(value, op);
}

Scalar Comm::allreduce_impl(Scalar value, ReduceOp op) {
  if (size_ == 1) return value;
  if (rank_ == 0) {
    Scalar acc = value;
    for (int r = 1; r < size_; ++r) {
      acc = reduce2(acc, fabric_->take(0, r, kTagReduceUp)[0], op);
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagReduceDown, std::vector<Scalar>{acc});
    }
    return acc;
  }
  fabric_->deliver(0, rank_, kTagReduceUp, std::vector<Scalar>{value});
  return fabric_->take(rank_, 0, kTagReduceDown)[0];
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  // int64 magnitudes used here (counts, sizes) are far below 2^53, so the
  // double payload is exact.
  return static_cast<std::int64_t>(
      allreduce(static_cast<Scalar>(value), op));
}

std::vector<Scalar> Comm::allgatherv(const std::vector<Scalar>& local) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllgatherv);
  }
  if (prof::enabled()) prof::current().reduction();
  return allgatherv_impl(local);
}

std::vector<Scalar> Comm::allgatherv_impl(const std::vector<Scalar>& local) {
  if (size_ == 1) return local;
  if (rank_ == 0) {
    std::vector<Scalar> all = local;
    for (int r = 1; r < size_; ++r) {
      std::vector<Scalar> part = fabric_->take(0, r, kTagGatherUp);
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagGatherDown, all);
    }
    return all;
  }
  fabric_->deliver(0, rank_, kTagGatherUp, local);
  return fabric_->take(rank_, 0, kTagGatherDown);
}

std::vector<Index> Comm::allgatherv(const std::vector<Index>& local) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllgatherv);
  }
  if (prof::enabled()) prof::current().reduction();
  return allgatherv_impl(local);
}

std::vector<Index> Comm::allgatherv_impl(const std::vector<Index>& local) {
  // Typed end to end: indices never round-trip through Scalar, so values
  // above 2^53 survive and the payload is half the bytes.
  if (size_ == 1) return local;
  if (rank_ == 0) {
    std::vector<Index> all = local;
    for (int r = 1; r < size_; ++r) {
      std::vector<Index> part = fabric_->take_indices(0, r, kTagGatherUp);
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagGatherDown, all);
    }
    return all;
  }
  fabric_->deliver(0, rank_, kTagGatherUp, local);
  return fabric_->take_indices(rank_, 0, kTagGatherDown);
}

void Comm::barrier() {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kBarrier);
  }
  if (prof::enabled()) prof::current().reduction();
  (void)allreduce_impl(Scalar{0}, ReduceOp::kSum);
}

const FabricStats& Comm::stats() const {
  return *fabric_->stats_[static_cast<std::size_t>(rank_)];
}

void Comm::add_payload_copy(std::uint64_t n) {
  fabric_->stats_[static_cast<std::size_t>(rank_)]->payload_copies += n;
}

void Comm::publish_stats_metrics() {
  const FabricStats& st = stats();
  const struct {
    const char* name;
    std::uint64_t value;
  } counters[] = {
      {"fabric/mailbox_msgs", st.mailbox_msgs},
      {"fabric/mailbox_allocs", st.mailbox_allocs},
      {"fabric/payload_copies", st.payload_copies},
      {"fabric/channel_sends", st.channel_sends},
      {"fabric/send_parks", st.send_parks},
      {"fabric/wait_any_calls", st.wait_any_calls},
      {"fabric/wait_any_wakeups", st.wait_any_wakeups},
  };
  for (const auto& c : counters) {
    // Collective: every rank contributes and every rank learns the total,
    // so rank 0's profiler (the one export_all serializes) has them all.
    const std::int64_t total =
        allreduce(static_cast<std::int64_t>(c.value), ReduceOp::kSum);
    if (prof::enabled()) {
      prof::current().set_metric(c.name, static_cast<double>(total));
    }
  }
  // Aegis counters are process-global atomics (every rank already sees the
  // totals), so no reduction is needed — each rank stamps the same values.
  if (prof::enabled()) {
    aegis::publish_metrics(prof::current());
  }
}

// ---- PersistentExchange ----------------------------------------------

std::shared_ptr<PersistentExchange> Comm::open_exchange(
    const std::vector<GhostSendSpec>& sends,
    const std::vector<GhostRecvSpec>& recvs) {
  std::shared_ptr<PersistentExchange> ex(
      new PersistentExchange(fabric_, rank_));
  ex->sends_.reserve(sends.size());
  for (const GhostSendSpec& s : sends) {
    KESTREL_CHECK(s.peer >= 0 && s.peer < size_ && s.peer != rank_,
                  "open_exchange: bad send peer");
    KESTREL_CHECK(s.count > 0, "open_exchange: empty send channel");
    GhostChannel* ch = fabric_->open_channel_endpoint(rank_, s.peer, true);
    ex->sends_.push_back(
        PersistentExchange::SendSlot{ch, s.peer, s.count, 0});
  }
  ex->recvs_.reserve(recvs.size());
  for (const GhostRecvSpec& r : recvs) {
    KESTREL_CHECK(r.peer >= 0 && r.peer < size_ && r.peer != rank_,
                  "open_exchange: bad recv peer");
    KESTREL_CHECK(r.dest != nullptr && r.count > 0,
                  "open_exchange: recv channel needs a destination slice");
    GhostChannel* ch = fabric_->open_channel_endpoint(r.peer, rank_, false);
    // Published to the sender by the first arm(): the sender reads these
    // only after observing armed >= 1.
    ch->dest = r.dest;
    ch->recv_count = r.count;
    ex->recvs_.push_back(
        PersistentExchange::RecvSlot{ch, r.peer, r.count, false});
  }
  if (FabricChecker* chk = checker()) {
    chk->on_channel_open(rank_, ex->nsend(), ex->nrecv());
  }
  return ex;
}

PersistentExchange::PersistentExchange(Fabric* fabric, int rank)
    : fabric_(fabric), rank_(rank) {}

void PersistentExchange::arm() {
  KESTREL_CHECK(round_ == 0 || completed_ == nrecv(),
                "arm: previous exchange round not fully drained");
  ++round_;
  completed_ = 0;
  fabric_->maybe_kill(rank_, "persistent exchange arm");
  if (FabricChecker* chk = fabric_->checker_.get()) {
    chk->on_channel_arm(rank_, nrecv());
  }
  for (RecvSlot& r : recvs_) {
    r.done = false;
    GhostChannel& ch = *r.ch;
    ch.armed.store(round_, std::memory_order_seq_cst);
    if (ch.sender_parked.load(std::memory_order_seq_cst) != 0) {
      // Empty critical section: guarantees the parked sender is either
      // fully asleep (notify wakes it) or has not yet evaluated its wait
      // predicate under the lock (it will see the new armed value).
      { std::lock_guard<std::mutex> lock(ch.mu); }
      ch.cv.notify_all();
    }
  }
}

void PersistentExchange::send(int send_idx, const Scalar* packed,
                              Index count) {
  KESTREL_CHECK(send_idx >= 0 && send_idx < nsend(),
                "send: bad channel index");
  SendSlot& s = sends_[static_cast<std::size_t>(send_idx)];
  KESTREL_CHECK(count == s.count,
                "send: payload size does not match the registered plan");
  if (FabricChecker* chk = fabric_->checker_.get()) {
    chk->on_channel_send(rank_, s.peer);
  }
  FabricStats& st = *fabric_->stats_[static_cast<std::size_t>(rank_)];
  GhostChannel& ch = *s.ch;
  const std::uint64_t k = ++s.seq;
  const aegis::FaultPlan* plan = fabric_->opts_.faults.get();
  if (plan != nullptr) {
    fabric_->maybe_kill(rank_, "persistent channel send");
    if (plan->corrupts_messages()) {
      // A persistent channel is a single-slot rendezvous: the armed/
      // delivered round counters already deduplicate and order rounds, so
      // dup/reorder verdicts degenerate to a recoverable retransmission,
      // exactly like drop and bit-flip (whose corrupted attempts the
      // receiver NACKs via the end-to-end checksum below). Delay is a
      // plain in-flight stall.
      const aegis::FaultVerdict verdict =
          plan->message_fault(rank_, s.peer, /*tag=*/send_idx, k);
      aegis::AegisStats& ast = aegis::stats();
      if (verdict.kind == aegis::FaultKind::kDelay) {
        ast.faults_injected++;
        ast.delays++;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(plan->delay_ms()));
      } else if (verdict.kind != aegis::FaultKind::kNone &&
                 verdict.kind != aegis::FaultKind::kKillRank) {
        ast.faults_injected++;
        for (int attempt = 0; attempt < verdict.repeat; ++attempt) {
          if (attempt >= plan->max_retries()) {
            throw RankFailure(
                rank_,
                std::string("unrecoverable ") +
                    aegis::fault_kind_name(verdict.kind) +
                    " fault: persistent channel (src=" +
                    std::to_string(rank_) + ", dst=" +
                    std::to_string(s.peer) + ", round " + std::to_string(k) +
                    ") still faulty after " +
                    std::to_string(plan->max_retries()) + " retries",
                __FILE__, __LINE__);
          }
          if (verdict.kind == aegis::FaultKind::kBitFlip) {
            ast.checksum_failures++;
          }
          ast.retries++;
          aegis::backoff_sleep(attempt);
        }
      }
    }
  }
  if (ch.armed.load(std::memory_order_seq_cst) < k &&
      !spin_before_park([&] {
        return ch.armed.load(std::memory_order_seq_cst) >= k ||
               fabric_->aborted_.load(std::memory_order_relaxed);
      })) {
    // Slow path: the receiver has not re-armed this round yet (we are one
    // full exchange ahead of it). Park on the channel condvar.
    st.send_parks++;
    ch.sender_parked.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(ch.mu);
      const auto ready = [&] {
        return fabric_->aborted_.load(std::memory_order_relaxed) ||
               ch.armed.load(std::memory_order_seq_cst) >= k;
      };
      if (fabric_->checker_ != nullptr && fabric_->opts_.hang_timeout_s > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(fabric_->opts_.hang_timeout_s));
        if (!ch.cv.wait_until(lock, deadline, ready)) {
          ch.sender_parked.fetch_sub(1, std::memory_order_seq_cst);
          lock.unlock();
          std::ostringstream os;
          os << "persistent channel send (src=" << rank_ << ", dst="
             << s.peer << ", tag=" << send_idx
             << "): peer never re-armed the channel";
          fabric_->hang_failure(rank_, os.str());
        }
      } else {
        ch.cv.wait(lock, ready);
      }
    }
    ch.sender_parked.fetch_sub(1, std::memory_order_seq_cst);
    if (fabric_->aborted_.load(std::memory_order_relaxed) &&
        ch.armed.load(std::memory_order_seq_cst) < k) {
      fabric_->abort_failure();
    }
  }
  // armed >= k (seq_cst) also publishes dest/recv_count from the receiver's
  // open_exchange, so this cross-thread validation is race-free.
  KESTREL_CHECK(count == ch.recv_count,
                "send: sender plan count does not match receiver plan count");
  std::memcpy(ch.dest, packed, static_cast<std::size_t>(count) *
                                   sizeof(Scalar));
  if (plan != nullptr && plan->corrupts_messages()) {
    // End-to-end integrity: published before (and by) the delivered bump;
    // the receiver re-checksums the in-place slice in wait_any.
    ch.xsum.store(
        aegis::checksum_bytes(ch.dest, static_cast<std::size_t>(count) *
                                           sizeof(Scalar)),
        std::memory_order_relaxed);
  }
  st.channel_sends++;
  st.payload_copies++;
  if (prof::enabled()) {
    prof::current().message(
        1, static_cast<std::size_t>(count) * sizeof(Scalar));
  }
  ch.delivered.store(k, std::memory_order_seq_cst);
  Fabric::Doorbell& bell =
      *fabric_->doorbells_[static_cast<std::size_t>(ch.dst)];
  if (bell.parked.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lock(bell.mu); }
    bell.cv.notify_all();
  }
}

int PersistentExchange::wait_any() {
  KESTREL_CHECK(round_ > 0, "wait_any: exchange was never armed");
  KESTREL_CHECK(completed_ < nrecv(),
                "wait_any: every receive of this round already completed");
  FabricStats& st = *fabric_->stats_[static_cast<std::size_t>(rank_)];
  st.wait_any_calls++;
  const auto scan = [&]() -> int {
    for (int i = 0; i < nrecv(); ++i) {
      RecvSlot& r = recvs_[static_cast<std::size_t>(i)];
      if (!r.done &&
          r.ch->delivered.load(std::memory_order_seq_cst) >= round_) {
        return i;
      }
    }
    return -1;
  };
  int idx = scan();
  if (idx < 0) {
    spin_before_park([&] {
      idx = scan();
      return idx >= 0 ||
             fabric_->aborted_.load(std::memory_order_relaxed);
    });
  }
  if (idx < 0 && fabric_->aborted_.load(std::memory_order_relaxed)) {
    fabric_->abort_failure();
  }
  if (idx < 0) {
    // Park on this rank's doorbell. The parked counter is the Dekker flag
    // senders check after bumping delivered; the re-scan inside the wait
    // predicate (under the doorbell mutex) closes the remaining window.
    st.wait_any_wakeups++;
    Fabric::Doorbell& bell =
        *fabric_->doorbells_[static_cast<std::size_t>(rank_)];
    bell.parked.fetch_add(1, std::memory_order_seq_cst);
    {
      std::unique_lock<std::mutex> lock(bell.mu);
      const auto ready = [&] {
        if (fabric_->aborted_.load(std::memory_order_relaxed)) return true;
        idx = scan();
        return idx >= 0;
      };
      if (fabric_->checker_ != nullptr && fabric_->opts_.hang_timeout_s > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(fabric_->opts_.hang_timeout_s));
        if (!bell.cv.wait_until(lock, deadline, ready)) {
          bell.parked.fetch_sub(1, std::memory_order_seq_cst);
          lock.unlock();
          // Name every channel still pending this round, so the report
          // points at the exact (src, dst, tag) links that stalled.
          std::ostringstream os;
          os << "persistent wait_any: no channel delivered; pending:";
          for (int i = 0; i < nrecv(); ++i) {
            const RecvSlot& pend = recvs_[static_cast<std::size_t>(i)];
            if (!pend.done) {
              os << " (src=" << pend.peer << ", dst=" << rank_
                 << ", tag=" << i << ")";
            }
          }
          fabric_->hang_failure(rank_, os.str());
        }
      } else {
        bell.cv.wait(lock, ready);
      }
    }
    bell.parked.fetch_sub(1, std::memory_order_seq_cst);
    if (idx < 0) {
      fabric_->abort_failure();
    }
  }
  RecvSlot& r = recvs_[static_cast<std::size_t>(idx)];
  const aegis::FaultPlan* plan = fabric_->opts_.faults.get();
  if (plan != nullptr && plan->corrupts_messages()) {
    // End-to-end integrity check of the in-place delivery. The sender's
    // simulated retransmissions always end in a clean copy, so a mismatch
    // here means genuine memory corruption — fail structured, naming the
    // link.
    const std::uint64_t got = aegis::checksum_bytes(
        r.ch->dest, static_cast<std::size_t>(r.count) * sizeof(Scalar));
    if (got != r.ch->xsum.load(std::memory_order_relaxed)) {
      aegis::stats().checksum_failures++;
      throw RankFailure(r.peer,
                        "persistent channel payload checksum mismatch "
                        "(src=" + std::to_string(r.peer) + ", dst=" +
                            std::to_string(rank_) + ", tag=" +
                            std::to_string(idx) + ")",
                        __FILE__, __LINE__);
    }
  }
  r.done = true;
  ++completed_;
  if (FabricChecker* chk = fabric_->checker_.get()) {
    chk->on_channel_complete(rank_, r.peer);
  }
  return idx;
}

void PersistentExchange::wait_all() {
  while (completed_ < nrecv()) (void)wait_any();
}

// ---- Fabric ----------------------------------------------------------

Fabric::Fabric(int nranks, const FabricOptions& opts)
    : nranks_(nranks), opts_(opts) {
  if (opts_.check) checker_ = std::make_unique<FabricChecker>(nranks);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  doorbells_.reserve(static_cast<std::size_t>(nranks));
  stats_.reserve(static_cast<std::size_t>(nranks));
  send_seq_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
    doorbells_.push_back(std::make_unique<Doorbell>());
    stats_.push_back(std::make_unique<FabricStats>());
    send_seq_.push_back(
        std::make_unique<std::map<std::tuple<int, int, bool>,
                                  std::uint64_t>>());
  }
}

Fabric::~Fabric() = default;

void Fabric::deliver(int dest, int source, int tag,
                     std::vector<Scalar> payload) {
  deliver_impl(&Mailbox::queue, dest, source, tag, std::move(payload),
               /*is_index=*/false);
}

void Fabric::deliver(int dest, int source, int tag,
                     std::vector<Index> payload) {
  deliver_impl(&Mailbox::iqueue, dest, source, tag, std::move(payload),
               /*is_index=*/true);
}

template <class T>
void Fabric::deliver_impl(
    std::map<std::pair<int, int>, std::deque<FabricEnvelope<T>>> Mailbox::*q,
    int dest, int source, int tag, std::vector<T> payload, bool is_index) {
  // The payload vector was allocated (and filled by copy) by the sending
  // rank just before this call; count it against that rank.
  FabricStats& st = *stats_[static_cast<std::size_t>(source)];
  st.mailbox_msgs++;
  st.mailbox_allocs++;
  st.payload_copies++;
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  const aegis::FaultPlan* plan = opts_.faults.get();
  if (plan != nullptr) maybe_kill(source, "mailbox send");
  // Enqueues one envelope; a reordered envelope jumps the (source, tag)
  // queue (push_front), which the receiver heals by consuming in sequence
  // order rather than arrival order.
  const auto enqueue = [&](FabricEnvelope<T> env, bool front) {
    {
      std::lock_guard<std::mutex> lock(box.mu);
      auto& dq = (box.*q)[{source, tag}];
      if (front) {
        dq.push_front(std::move(env));
      } else {
        dq.push_back(std::move(env));
      }
    }
    box.cv.notify_all();
  };
  if (plan == nullptr || !plan->corrupts_messages()) {
    // Fault-free fast path (also kill-only plans): unchecked envelope, no
    // sequence-number or checksum work.
    FabricEnvelope<T> env;
    env.payload = std::move(payload);
    enqueue(std::move(env), /*front=*/false);
    return;
  }
  auto& seq_map = *send_seq_[static_cast<std::size_t>(source)];
  const std::uint64_t seq = ++seq_map[{dest, tag, is_index}];
  const std::uint64_t sum = aegis::checksum_bytes(
      payload.data(), payload.size() * sizeof(T));
  aegis::AegisStats& ast = aegis::stats();
  const aegis::FaultVerdict verdict =
      plan->message_fault(source, dest, tag, seq);
  bool reorder = false;
  switch (verdict.kind) {
    case aegis::FaultKind::kNone:
    case aegis::FaultKind::kKillRank:
      break;
    case aegis::FaultKind::kDelay: {
      ast.faults_injected++;
      ast.delays++;
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          plan->delay_ms()));
      break;
    }
    case aegis::FaultKind::kDuplicate: {
      // Stale copy first; it carries the same sequence number, so the
      // receiver consumes one copy and discards the other as a duplicate.
      ast.faults_injected++;
      FabricEnvelope<T> dup;
      dup.seq = seq;
      dup.sum = sum;
      dup.checked = true;
      dup.payload = payload;
      enqueue(std::move(dup), /*front=*/false);
      break;
    }
    case aegis::FaultKind::kReorder: {
      ast.faults_injected++;
      reorder = true;
      break;
    }
    case aegis::FaultKind::kDrop:
    case aegis::FaultKind::kBitFlip: {
      // The link eats (or corrupts) the message for `repeat` consecutive
      // attempts; the sender retransmits with exponential backoff until its
      // retry budget runs out, at which point the link is declared dead and
      // the failure unwinds the whole fabric as a structured error.
      ast.faults_injected++;
      for (int attempt = 0; attempt < verdict.repeat; ++attempt) {
        if (attempt >= plan->max_retries()) {
          throw RankFailure(
              source,
              std::string("unrecoverable ") +
                  aegis::fault_kind_name(verdict.kind) + " fault: link to "
                  "rank " + std::to_string(dest) + " (tag " +
                  std::to_string(tag) + ", seq " + std::to_string(seq) +
                  ") still faulty after " +
                  std::to_string(plan->max_retries()) + " retries",
              __FILE__, __LINE__);
        }
        if (verdict.kind == aegis::FaultKind::kBitFlip) {
          // The corrupted attempt really reaches the receiver: same seq,
          // checksum of the CLEAN payload, one bit flipped in flight. The
          // receiver detects the mismatch and discards it.
          FabricEnvelope<T> bad;
          bad.seq = seq;
          bad.sum = sum;
          bad.checked = true;
          bad.payload = payload;
          if (!bad.payload.empty()) {
            auto* bytes = reinterpret_cast<unsigned char*>(
                bad.payload.data());
            bytes[static_cast<std::size_t>(attempt) %
                  (bad.payload.size() * sizeof(T))] ^= 0x40;
          }
          enqueue(std::move(bad), /*front=*/false);
        }
        ast.retries++;
        aegis::backoff_sleep(attempt);
      }
      break;
    }
  }
  FabricEnvelope<T> env;
  env.seq = seq;
  env.sum = sum;
  env.checked = true;
  env.payload = std::move(payload);
  enqueue(std::move(env), reorder);
}

template <class T>
std::vector<T> Fabric::take_from(
    std::map<std::pair<int, int>, std::deque<FabricEnvelope<T>>> Mailbox::*q,
    std::map<std::pair<int, int>, std::uint64_t> Mailbox::*seen,
    int self, int source, int tag) {
  const aegis::FaultPlan* plan = opts_.faults.get();
  if (plan != nullptr) maybe_kill(self, "mailbox receive");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(source, tag);
  // Duplicate and corrupted envelopes are consumed and discarded inside the
  // loop, which can leave the queue empty again — hence wait-and-rescan
  // until a genuinely new, intact envelope is accepted.
  for (;;) {
    const auto ready = [&] {
      if (aborted_.load(std::memory_order_relaxed)) return true;
      auto it = (box.*q).find(key);
      return it != (box.*q).end() && !it->second.empty();
    };
    if (checker_ != nullptr && opts_.hang_timeout_s > 0) {
      // Bounded wait: a lost wakeup or a deadlocked peer would otherwise
      // hang this rank forever. On timeout, abort the fabric (so peers
      // unblock) and report who was stuck on what.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(opts_.hang_timeout_s));
      if (!box.cv.wait_until(lock, deadline, ready)) {
        lock.unlock();
        hang_failure(self, take_context(self, source, tag));
      }
    } else {
      box.cv.wait(lock, ready);
    }
    auto it = (box.*q).find(key);
    if (it == (box.*q).end() || it->second.empty()) {
      abort_failure();
    }
    auto& dq = it->second;
    if (!dq.front().checked) {
      // Fault-free fast path: strict FIFO, no bookkeeping.
      std::vector<T> payload = std::move(dq.front().payload);
      dq.pop_front();
      return payload;
    }
    // Aegis path: consume in sequence order (heals reordering), discard
    // duplicates (seq already seen) and corrupted payloads (checksum
    // mismatch; the clean retransmission follows).
    auto best = dq.begin();
    for (auto e = std::next(dq.begin()); e != dq.end(); ++e) {
      if (e->seq < best->seq) best = e;
    }
    aegis::AegisStats& ast = aegis::stats();
    std::uint64_t& seen_seq = (box.*seen)[key];
    if (best->seq <= seen_seq) {
      dq.erase(best);
      ast.duplicates_dropped++;
      continue;
    }
    if (aegis::checksum_bytes(best->payload.data(),
                              best->payload.size() * sizeof(T)) !=
        best->sum) {
      dq.erase(best);
      ast.checksum_failures++;
      continue;
    }
    if (best != dq.begin()) ast.reorders_healed++;
    seen_seq = best->seq;
    std::vector<T> payload = std::move(best->payload);
    dq.erase(best);
    return payload;
  }
}

std::vector<Scalar> Fabric::take(int self, int source, int tag) {
  return take_from(&Mailbox::queue, &Mailbox::seq_seen, self, source, tag);
}

std::vector<Index> Fabric::take_indices(int self, int source, int tag) {
  return take_from(&Mailbox::iqueue, &Mailbox::iseq_seen, self, source, tag);
}

void Fabric::maybe_kill(int rank, const char* where) const {
  const aegis::FaultPlan* plan = opts_.faults.get();
  if (plan == nullptr || !plan->check_kill(rank)) return;
  aegis::stats().rank_kills++;
  throw RankFailure(rank,
                    std::string("injected rank kill at ") + where +
                        " (fault plan '" + plan->spec() + "')",
                    __FILE__, __LINE__);
}

void Fabric::abort_failure() const {
  // Every unwinding rank reports the same root cause, so a test (or an
  // operator) can assert the structured failure on all ranks, not just the
  // one that died.
  const int first = first_failed_rank_.load(std::memory_order_seq_cst);
  if (first >= 0) {
    throw RankFailure(first,
                      "fabric aborted: unwinding pending operations after "
                      "the failure of rank " + std::to_string(first),
                      __FILE__, __LINE__);
  }
  KESTREL_FAIL("fabric aborted: a peer rank threw an exception");
}

GhostChannel* Fabric::open_channel_endpoint(int src, int dst,
                                            bool sender_side) {
  std::lock_guard<std::mutex> lock(channels_mu_);
  ChannelSlots& slots = channels_[{src, dst}];
  std::size_t& next =
      sender_side ? slots.opened_by_sender : slots.opened_by_receiver;
  if (next >= slots.channels.size()) {
    auto ch = std::make_unique<GhostChannel>();
    ch->src = src;
    ch->dst = dst;
    slots.channels.push_back(std::move(ch));
  }
  return slots.channels[next++].get();
}

void Fabric::hang_failure(int rank, const std::string& what) {
  abort_all();
  std::ostringstream os;
  os << "fabric checker: possible lost wakeup or deadlock: rank " << rank
     << " blocked in " << what << " for more than " << opts_.hang_timeout_s
     << "s";
  if (checker_ != nullptr) os << "\n" << checker_->trace(16);
  KESTREL_FAIL(os.str());
}

void Fabric::abort_all() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
  for (auto& bell : doorbells_) {
    { std::lock_guard<std::mutex> lock(bell->mu); }
    bell->cv.notify_all();
  }
  // Wake parked channel senders too: their receiver may be the rank that
  // just failed.
  std::lock_guard<std::mutex> reg_lock(channels_mu_);
  for (auto& [key, slots] : channels_) {
    for (auto& ch : slots.channels) {
      { std::lock_guard<std::mutex> lock(ch->mu); }
      ch->cv.notify_all();
    }
  }
}

void Fabric::run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, FabricOptions{}, fn);
}

void Fabric::run(int nranks, const FabricOptions& opts,
                 const std::function<void(Comm&)>& fn) {
  KESTREL_CHECK(nranks >= 1, "need at least one rank");
  Fabric fabric(nranks, opts);
  if (nranks == 1) {
    // Every rank — including the calling thread here — profiles into its
    // own stack-local instance, never the shared global: library code
    // instrumented with prof::current() is race-free on the fabric by
    // construction. Rank profilers die with the rank, so reduction and
    // export (prof::export_all) must happen inside fn.
    prof::Profiler rank_prof;
    prof::AttachGuard guard(&rank_prof);
    Comm comm(&fabric, 0, 1);
    fn(comm);
    // Un-waited requests are a bug even on one rank: the message (from a
    // self-send) would be silently dropped.
    if (fabric.checker_) fabric.checker_->on_rank_exit(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        prof::Profiler rank_prof;
        prof::AttachGuard guard(&rank_prof);
        Comm comm(&fabric, r, nranks);
        fn(comm);
        // Only on a normal return: after an abort, dangling requests on
        // surviving ranks are expected, not a bug.
        if (fabric.checker_ && !fabric.aborted_.load()) {
          fabric.checker_->on_rank_exit(r);
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        int expected = -1;
        fabric.first_failed_rank_.compare_exchange_strong(expected, r);
        fabric.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root-cause exception (the first rank that failed), not a
  // secondary "fabric aborted" error from a rank that was merely unblocked.
  const int first = fabric.first_failed_rank_.load();
  if (first >= 0) std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
}

}  // namespace kestrel::par
