#include "pc/mg.hpp"

#include <cmath>

#include "base/error.hpp"
#include "mat/spgemm.hpp"
#include "prof/profiler.hpp"

namespace kestrel::pc {

Multigrid::Multigrid(const mat::Csr& fine, std::vector<mat::Csr> interps)
    : Multigrid(fine, std::move(interps), Options()) {}

Multigrid::Multigrid(const mat::Csr& fine, std::vector<mat::Csr> interps,
                     Options opts, FormatFactory factory)
    : opts_(opts) {
  if (!factory) {
    factory = [](const mat::Csr& a) {
      return std::make_shared<const mat::Csr>(a);
    };
  }
  levels_.resize(interps.size() + 1);

  levels_[0].a = fine;
  for (std::size_t l = 0; l < interps.size(); ++l) {
    KESTREL_CHECK(interps[l].rows() == levels_[l].a.rows(),
                  "interpolation row count must match the finer level");
    levels_[l].interp = std::move(interps[l]);
    levels_[l].restrict_ = levels_[l].interp.transpose();
    levels_[l + 1].a =
        mat::spgemm(levels_[l].restrict_,
                    mat::spgemm(levels_[l].a, levels_[l].interp));
  }

  for (auto& level : levels_) {
    level.op = factory(level.a);
    level.a.get_diagonal(level.inv_diag);
    for (Index i = 0; i < level.inv_diag.size(); ++i) {
      KESTREL_CHECK(level.inv_diag[i] != 0.0, "mg: zero diagonal");
      level.inv_diag[i] = 1.0 / level.inv_diag[i];
    }
    if (opts_.smoother == Smoother::kChebyshev) {
      level.emax = estimate_level_emax(level);
    }
  }

  const mat::Csr& coarse = levels_.back().a;
  use_direct_coarse_ = coarse.rows() <= opts_.direct_coarse_limit;
  if (use_direct_coarse_) {
    coarse_lu_ = mat::Dense::from_csr(coarse);
    coarse_lu_.lu_factor();
  }
}

Scalar Multigrid::estimate_level_emax(const Level& level) const {
  // power iteration on D^{-1} A with a fixed pseudo-random start
  const Index n = level.a.rows();
  Vector v(n), av(n);
  for (Index i = 0; i < n; ++i) {
    v[i] = 0.5 + 0.37 * ((i * 2654435761u) % 97) / 97.0;
  }
  Scalar lambda = 1.0;
  for (int it = 0; it < opts_.cheby_power_iterations; ++it) {
    const Scalar nv = v.norm2();
    if (nv == 0.0) break;
    v.scale(1.0 / nv);
    level.op->spmv(v.data(), av.data());
    for (Index i = 0; i < n; ++i) av[i] *= level.inv_diag[i];
    lambda = v.dot(av);
    v.copy_from(av);
  }
  return std::abs(lambda);
}

void Multigrid::smooth(const Level& level, const Vector& rhs, Vector& x,
                       int sweeps) const {
  if (opts_.smoother == Smoother::kChebyshev && level.emax > 0.0) {
    smooth_chebyshev(level, rhs, x, sweeps);
  } else {
    smooth_jacobi(level, rhs, x, sweeps);
  }
}

void Multigrid::smooth_jacobi(const Level& level, const Vector& rhs,
                              Vector& x, int sweeps) const {
  // damped Jacobi: x += omega * D^{-1} (rhs - A x)
  for (int s = 0; s < sweeps; ++s) {
    level.op->spmv(x.data(), level.tmp.data());
    for (Index i = 0; i < x.size(); ++i) {
      x[i] += opts_.jacobi_omega * level.inv_diag[i] *
              (rhs[i] - level.tmp[i]);
    }
  }
}

void Multigrid::smooth_chebyshev(const Level& level, const Vector& rhs,
                                 Vector& x, int sweeps) const {
  // Chebyshev iteration on the Jacobi-preconditioned operator targeting
  // the upper spectrum [low_fraction, safety] * emax; each "sweep" here is
  // a fixed small number of Chebyshev steps (PETSc runs 2 by default).
  const Scalar emin = opts_.cheby_low_fraction * level.emax;
  const Scalar emax = opts_.cheby_safety * level.emax;
  const Scalar theta = 0.5 * (emax + emin);
  const Scalar delta = 0.5 * (emax - emin);
  const int steps = 2 * sweeps;

  const Index n = x.size();
  level.p.resize(n);
  Scalar alpha = 0.0;
  for (int s = 0; s < steps; ++s) {
    // z = D^{-1} (rhs - A x), reusing tmp as the residual buffer
    level.op->spmv(x.data(), level.tmp.data());
    for (Index i = 0; i < n; ++i) {
      level.tmp[i] = level.inv_diag[i] * (rhs[i] - level.tmp[i]);
    }
    if (s == 0) {
      level.p.copy_from(level.tmp);
      alpha = 1.0 / theta;
    } else {
      Scalar beta;
      if (s == 1) {
        beta = 0.5 * (delta * alpha) * (delta * alpha);
      } else {
        beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      }
      alpha = 1.0 / (theta - beta / alpha);
      level.p.aypx(beta, level.tmp);
    }
    x.axpy(alpha, level.p);
  }
}

void Multigrid::cycle(int l, const Vector& rhs, Vector& x) const {
  const Level& level = levels_[static_cast<std::size_t>(l)];
  const Index n = level.a.rows();
  level.tmp.resize(n);

  if (l == static_cast<int>(levels_.size()) - 1) {
    if (use_direct_coarse_) {
      coarse_lu_.lu_solve(rhs.data(), x.data());
    } else {
      x.set(0.0);
      smooth(level, rhs, x, opts_.coarse_jacobi_sweeps);
    }
    return;
  }

  x.set(0.0);
  smooth(level, rhs, x, opts_.pre_smooths);

  // residual and restriction
  level.r.resize(n);
  level.op->spmv(x.data(), level.r.data());
  for (Index i = 0; i < n; ++i) level.r[i] = rhs[i] - level.r[i];
  const Index nc = level.interp.cols();
  level.rc.resize(nc);
  level.restrict_.spmv(level.r.data(), level.rc.data());

  // coarse correction
  level.xc.resize(nc);
  cycle(l + 1, level.rc, level.xc);

  // prolongate and correct: x += P xc
  level.interp.spmv(level.xc.data(), level.r.data());
  for (Index i = 0; i < n; ++i) x[i] += level.r[i];

  smooth(level, rhs, x, opts_.post_smooths);
}

void Multigrid::apply(const Vector& r, Vector& z) const {
  KESTREL_CHECK(r.size() == levels_[0].a.rows(), "mg: size mismatch");
  static const int event = prof::registered_event("PCApply(MG)");
  prof::ScopedEvent timer(event);
  z.resize(r.size());
  cycle(0, r, z);
}

}  // namespace kestrel::pc
