#include "mat/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "base/error.hpp"

namespace kestrel::mat {

Csr spgemm(const Csr& a, const Csr& b) {
  KESTREL_CHECK(a.cols() == b.rows(), "spgemm dimension mismatch");
  const Index m = a.rows();
  const Index n = b.cols();

  std::vector<Index> rowptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;

  // Gustavson: dense accumulator over the output row.
  std::vector<Scalar> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<Index> marker(static_cast<std::size_t>(n), -1);
  std::vector<Index> row_cols;
  for (Index i = 0; i < m; ++i) {
    row_cols.clear();
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    for (std::size_t ka = 0; ka < ac.size(); ++ka) {
      const Index k = ac[ka];
      const Scalar aval = av[ka];
      const auto bc = b.row_cols(k);
      const auto bv = b.row_vals(k);
      for (std::size_t kb = 0; kb < bc.size(); ++kb) {
        const Index j = bc[kb];
        if (marker[static_cast<std::size_t>(j)] != i) {
          marker[static_cast<std::size_t>(j)] = i;
          acc[static_cast<std::size_t>(j)] = 0.0;
          row_cols.push_back(j);
        }
        acc[static_cast<std::size_t>(j)] += aval * bv[kb];
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (Index j : row_cols) {
      colidx.push_back(j);
      val.push_back(acc[static_cast<std::size_t>(j)]);
    }
    rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(colidx.size());
  }
  return Csr(m, n, std::move(rowptr), std::move(colidx), std::move(val));
}

Csr galerkin(const Csr& a, const Csr& p) {
  const Csr pt = p.transpose();
  return spgemm(spgemm(pt, a), p);
}

Csr add(Scalar alpha, const Csr& a, Scalar beta, const Csr& b) {
  KESTREL_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
                "add dimension mismatch");
  const Index m = a.rows();
  std::vector<Index> rowptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;
  for (Index i = 0; i < m; ++i) {
    const auto ac = a.row_cols(i);
    const auto av = a.row_vals(i);
    const auto bc = b.row_cols(i);
    const auto bv = b.row_vals(i);
    std::size_t ka = 0, kb = 0;
    while (ka < ac.size() || kb < bc.size()) {
      Index j;
      Scalar v = 0.0;
      if (ka < ac.size() && (kb >= bc.size() || ac[ka] <= bc[kb])) {
        j = ac[ka];
        v += alpha * av[ka];
        ++ka;
        if (kb < bc.size() && bc[kb] == j) {
          v += beta * bv[kb];
          ++kb;
        }
      } else {
        j = bc[kb];
        v += beta * bv[kb];
        ++kb;
      }
      colidx.push_back(j);
      val.push_back(v);
    }
    rowptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(colidx.size());
  }
  return Csr(m, a.cols(), std::move(rowptr), std::move(colidx),
             std::move(val));
}

Csr identity(Index n) {
  std::vector<Index> rowptr(static_cast<std::size_t>(n) + 1);
  std::vector<Index> colidx(static_cast<std::size_t>(n));
  std::vector<Scalar> val(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i <= n; ++i) rowptr[static_cast<std::size_t>(i)] = i;
  for (Index i = 0; i < n; ++i) colidx[static_cast<std::size_t>(i)] = i;
  return Csr(n, n, std::move(rowptr), std::move(colidx), std::move(val));
}

}  // namespace kestrel::mat
