"""Traffic-model consistency checking.

Each format's `spmv_traffic_bytes()` carries an `// argus-traffic-model`
annotation run that decomposes the paper's byte formula into per-array
streams (`// argus-traffic-stream: val = 8 * nnz`).  This module proves two
things about every model:

1. **Formula consistency** — the sum of the declared stream byte counts is
   exactly (as a polynomial) the expression returned by the annotated C++
   function.  The C++ `return` expression is extracted textually, casts are
   stripped, `argus-traffic-bind` rewrites (e.g. ``nnz() = nnz``) are
   applied, and both sides are compared in the monomial-normal polynomial
   domain.  A model that drifts from the code it claims to describe fails
   here, with no build step involved.

2. **Kernel/IR consistency** — every array stream the abstract interpreter
   saw a kernel touch must appear in the model (after `@include`
   expansion), and every modeled stream that is not tagged `conv`
   (accounting convention) or `amortized` (asymptotically negligible) must
   actually be touched by the kernel.  A kernel that starts reading an
   array the traffic model does not account for — or a model that bills
   for an array no kernel touches — fails here.

Stream tags:
  wa          write-allocate accounting (count includes the RFO read)
  conv        accounting convention; not required to appear in kernel IR
  amortized   asymptotically negligible stream (may carry count 0)
  alt         mode-alternative stream billed 0 bytes (a multi-mode kernel
              touches it on the branches the model does not price)
  esize N     explicit element size (bytes) for the esize cross-check
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import aparser as A
from apoly import OpTerm, Poly, pdiv, pmod
from acontracts import (ContractError, TrafficModel, TrafficStream,
                        parse_annot_expr)


@dataclass
class TrafficIssue:
    path: str
    line: int
    fmt: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: traffic [{self.fmt}]: {self.message}"


# ---------------------------------------------------------------------------
# Expression -> polynomial (free identifiers become symbols)
# ---------------------------------------------------------------------------

def expr_poly(e: A.Expr, where: str) -> Poly:
    if isinstance(e, A.Num):
        return Poly.const(e.value)
    if isinstance(e, A.Ident):
        return Poly.sym(e.name)
    if isinstance(e, A.Member):
        return Poly.sym(_dotted(e, where))
    if isinstance(e, A.Unary) and e.op == "-":
        return -expr_poly(e.operand, where)
    if isinstance(e, A.Binary):
        a = expr_poly(e.lhs, where)
        b = expr_poly(e.rhs, where)
        if e.op == "+":
            return a + b
        if e.op == "-":
            return a - b
        if e.op == "*":
            return a * b
        if e.op == "/":
            return pdiv(a, b)
        if e.op == "%":
            return pmod(a, b)
        raise ContractError(where, f"unsupported operator {e.op!r}")
    if isinstance(e, A.Call):
        args = [expr_poly(x, where) for x in e.args]
        if e.fn in ("ceil_div", "ceildiv"):
            return Poly.atom(OpTerm("ceildiv", (args[0], args[1])))
        if e.fn == "popcount":
            return Poly.atom(OpTerm("popcount", (args[0],)))
        raise ContractError(where, f"unsupported call {e.fn!r}")
    raise ContractError(where, f"unsupported traffic expr {e}")


def _dotted(e: A.Expr, where: str) -> str:
    if isinstance(e, A.Ident):
        return e.name
    if isinstance(e, A.Member):
        return _dotted(e.base, where) + "." + e.name
    raise ContractError(where, "expected a dotted name")


# ---------------------------------------------------------------------------
# C++ side: extract the annotated function's return expression
# ---------------------------------------------------------------------------

_CAST_RE = re.compile(r"\bstatic_cast\s*<[^<>]*>")


def extract_cpp_return(text: str, model: TrafficModel) -> Optional[str]:
    """Find `return <expr>;` inside the function named `model.cpp_fn`,
    searching forward from the annotation block."""
    if not model.cpp_fn:
        return None
    lines = text.splitlines()
    # Find the function header at/after the annotation block.
    start = None
    header = re.compile(r"\b" + re.escape(model.cpp_fn) + r"\s*\(")
    for i in range(model.line - 1, min(len(lines), model.line + 24)):
        if header.search(lines[i]):
            start = i
            break
    if start is None:
        return None
    # Collect the first return statement within the next ~30 lines.
    buf: List[str] = []
    collecting = False
    for i in range(start, min(len(lines), start + 30)):
        line = lines[i]
        if not collecting:
            m = re.search(r"\breturn\b", line)
            if not m:
                if "}" in line and i > start:
                    break
                continue
            collecting = True
            line = line[m.end():]
        buf.append(line)
        if ";" in line:
            break
    joined = " ".join(buf)
    semi = joined.find(";")
    if semi < 0:
        return None
    return joined[:semi].strip()


def rewrite_cpp(expr: str, binds: List[Tuple[str, str]]) -> str:
    out = _CAST_RE.sub("", expr)
    # Longest left-hand side first so `val_.size()` wins over `val_`.
    for lhs, rhs in sorted(binds, key=lambda b: -len(b[0])):
        out = out.replace(lhs, "(" + rhs + ")")
    return out


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------

def model_index(models: List[TrafficModel]) -> Dict[str, TrafficModel]:
    out: Dict[str, TrafficModel] = {}
    for m in models:
        out[m.fmt] = m
    return out


def _stream_sum(model: TrafficModel, where: str) -> Poly:
    total = Poly.const(0)
    for s in model.streams:
        if s.include is not None:
            total = total + Poly.sym(f"include_{s.include}")
        elif s.count is not None:
            total = total + expr_poly(s.count, where)
    return total


def check_model_formula(model: TrafficModel,
                        text: str) -> List[TrafficIssue]:
    """Prove sum(streams) == the C++ return expression."""
    where = f"{model.path}:{model.line}"
    issues: List[TrafficIssue] = []
    if not model.cpp_fn:
        issues.append(TrafficIssue(model.path, model.line, model.fmt,
                                   "model lacks an argus-traffic-cpp anchor"))
        return issues
    raw = extract_cpp_return(text, model)
    if raw is None:
        issues.append(TrafficIssue(
            model.path, model.line, model.fmt,
            f"could not locate `return ...;` in {model.cpp_fn}()"))
        return issues
    rewritten = rewrite_cpp(raw, model.binds)
    try:
        cpp = expr_poly(parse_annot_expr(rewritten, where), where)
    except ContractError as ex:
        issues.append(TrafficIssue(
            model.path, model.line, model.fmt,
            f"cannot normalize C++ expression {rewritten!r}: {ex}"))
        return issues
    try:
        total = _stream_sum(model, where)
    except ContractError as ex:
        issues.append(TrafficIssue(model.path, model.line, model.fmt,
                                   f"bad stream expression: {ex}"))
        return issues
    diff = total - cpp
    if not (diff.is_const() and diff.const_value() == 0):
        issues.append(TrafficIssue(
            model.path, model.line, model.fmt,
            f"stream sum != spmv_traffic_bytes(): residual {diff}"))
    return issues


def expand_streams(model: TrafficModel, index: Dict[str, TrafficModel],
                   _seen: Optional[set] = None) -> Dict[str, TrafficStream]:
    """Stream name -> stream, with @include recursively folded in."""
    seen = _seen if _seen is not None else set()
    if model.fmt in seen:
        return {}
    seen.add(model.fmt)
    out: Dict[str, TrafficStream] = {}
    for s in model.streams:
        if s.include is not None:
            sub = index.get(s.include)
            if sub is not None:
                for k, v in expand_streams(sub, index, seen).items():
                    out.setdefault(k, v)
        else:
            out[s.array] = s
    return out


def check_kernel_streams(kernel: str, where: str, model: TrafficModel,
                         index: Dict[str, TrafficModel],
                         reads: Dict[str, int],
                         writes: Dict[str, int]) -> List[TrafficIssue]:
    """IR <-> model stream-set consistency for one analyzed kernel."""
    issues: List[TrafficIssue] = []
    streams = expand_streams(model, index)
    touched: Dict[str, int] = dict(reads)
    for k, v in writes.items():
        touched[k] = max(touched.get(k, 0), v)
    path, _, lineno = where.rpartition(":")
    line = int(lineno) if lineno.isdigit() else model.line
    path = path or model.path
    for name, esize in sorted(touched.items()):
        s = streams.get(name)
        if s is None:
            issues.append(TrafficIssue(
                path, line, model.fmt,
                f"kernel {kernel} touches array {name!r} absent from the "
                f"'{model.fmt}' traffic model"))
        elif "esize" in s.tags and s.tags["esize"]:
            declared = int(s.tags["esize"])
            if declared != esize:
                issues.append(TrafficIssue(
                    path, line, model.fmt,
                    f"kernel {kernel}: stream {name!r} declared esize "
                    f"{declared} but IR accesses {esize}-byte elements"))
    for name, s in sorted(streams.items()):
        if "conv" in s.tags or "amortized" in s.tags or "alt" in s.tags:
            continue
        if name not in touched:
            issues.append(TrafficIssue(
                path, line, model.fmt,
                f"traffic model '{model.fmt}' bills stream {name!r} but "
                f"kernel {kernel} never touches it"))
    return issues
