// Ablation (paper section 3.1): 64-byte vs 16-byte data alignment.
// PETSc's default 16-byte heap alignment broke/hurt AVX-512 on KNL; the
// paper's fix is cache-line alignment. Kestrel allocates aligned by
// default, so the deliberately misaligned variant is produced by offsetting
// into an oversized buffer.

#include <cstdio>
#include <cstring>

#include "base/aligned.hpp"
#include "prof/profiler.hpp"
#include "bench_common.hpp"
#include "mat/sell.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace kestrel;

/// Times the raw SELL kernel on a copy of the matrix whose val array is
/// displaced `offset` bytes from a cache-line boundary.
double time_with_offset(const mat::Sell& sell, std::size_t offset) {
  const std::size_t nelems = static_cast<std::size_t>(sell.stored_elements());
  AlignedBuffer<Scalar> val_buf(nelems + 8);
  AlignedBuffer<Index> idx_buf(nelems + 16);
  Scalar* val =
      reinterpret_cast<Scalar*>(reinterpret_cast<char*>(val_buf.data()) +
                                offset);
  Index* idx = reinterpret_cast<Index*>(
      reinterpret_cast<char*>(idx_buf.data()) + offset / 2);
  std::memcpy(val, sell.val(), nelems * sizeof(Scalar));
  std::memcpy(idx, sell.colidx(), nelems * sizeof(Index));

  mat::SellView view = sell.view();
  view.val = val;
  view.colidx = idx;

  auto fn = simd::lookup_as<simd::SellSpmvFn>(simd::Op::kSellSpmv,
                                              simd::detect_best_tier());
  Vector x(sell.cols(), 1.0), y(sell.rows());
  fn(view, x.data(), y.data());
  double best = 1e300;
  double spent = 0.0;
  do {
    const double t0 = wall_time();
    fn(view, x.data(), y.data());
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
    spent += dt;
  } while (spent < bench::scaled_seconds(0.2));
  volatile double sink = y[0];
  (void)sink;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header("Ablation 3.1: 64-byte vs 16-byte alignment of SELL data");
  const mat::Sell sell(bench::gray_scott_matrix(bench::scaled(384)));
  const double t64 = time_with_offset(sell, 0);
  const double t16 = time_with_offset(sell, 16);
  std::printf("%-28s %10.2f Gflop/s\n", "64-byte (cache line) aligned",
              bench::gflops(sell, t64));
  std::printf("%-28s %10.2f Gflop/s\n", "16-byte aligned (PETSc default)",
              bench::gflops(sell, t16));
  std::printf("penalty from misalignment: %+.1f%%\n",
              100.0 * (t16 / t64 - 1.0));
  std::printf(
      "\nExpected (paper): cache-line alignment avoids peel code and\n"
      "line-straddling vector loads; on KNL the 16-byte default even hung\n"
      "with aligned-load instructions. (Kestrel issues unaligned-load\n"
      "forms, so misalignment costs bandwidth, not correctness; modern\n"
      "cores show a smaller penalty than KNL did.)\n");
  return 0;
}
