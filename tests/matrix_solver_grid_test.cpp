// Full-grid compatibility sweeps: every Krylov solver against every
// applicable preconditioner on the advection-diffusion operator, and the
// distributed SpMV across every (diag format x offdiag format x ranks)
// combination — the configuration matrix a PETSc-style library must keep
// working under option changes.

#include <gtest/gtest.h>

#include <cmath>

#include "app/advection_diffusion.hpp"
#include "app/gray_scott.hpp"
#include "ksp/context.hpp"
#include "par/parmat.hpp"
#include "pc/pc.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

// ---- solver x preconditioner grid ----------------------------------------

class SolverPcGrid
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(SolverPcGrid, SolvesAdvectionDiffusion) {
  const std::string ksp_type = std::get<0>(GetParam());
  const std::string pc_type = std::get<1>(GetParam());
  if (ksp_type == "richardson" && pc_type == "none") {
    // unpreconditioned Richardson x += (b - A x) requires rho(I - A) < 1,
    // which a stiff operator with O(1/h^2) eigenvalues never satisfies —
    // divergence is the mathematically correct outcome here.
    GTEST_SKIP() << "unpreconditioned Richardson cannot converge on a "
                    "stiff operator";
  }

  app::AdvectionDiffusionParams params;
  params.eps = 0.1;  // mildly advective: safe for every combination
  const mat::Csr a = app::advection_diffusion(16, params);
  Vector x_true(a.rows());
  for (Index i = 0; i < x_true.size(); ++i) {
    x_true[i] = std::sin(0.11 * i);
  }
  Vector b;
  a.spmv(x_true, b);

  const auto pc = pc::make_pc(pc_type, a, 1);
  ksp::Settings settings;
  settings.rtol = 1e-10;
  settings.max_iterations = 20000;
  const auto solver = ksp::make_solver(ksp_type, settings);
  Vector x(a.rows());
  ksp::SeqContext ctx(a, pc.get());
  const auto res = solver->solve(ctx, b, x);
  ASSERT_TRUE(res.converged) << ksp_type << " + " << pc_type << " ("
                             << ksp::reason_name(res.reason) << ")";
  for (Index i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-5)
        << ksp_type << " + " << pc_type << " entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverPcGrid,
    ::testing::Combine(::testing::Values("gmres", "fgmres", "bicgstab",
                                         "richardson"),
                       ::testing::Values("none", "jacobi", "sor", "ilu",
                                         "ilu-level")),
    [](const ::testing::TestParamInfo<std::tuple<const char*, const char*>>&
           p) {
      std::string name = std::string(std::get<0>(p.param)) + "_" +
                         std::get<1>(p.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- distributed configuration grid ---------------------------------------

struct ParConfig {
  par::DiagFormat diag;
  par::OffdiagFormat offdiag;
  int ranks;
};

class ParFormatGrid : public ::testing::TestWithParam<ParConfig> {};

TEST_P(ParFormatGrid, SpmvMatchesSequential) {
  const ParConfig cfg = GetParam();
  app::GrayScott gs(8);
  Vector u0;
  gs.initial_condition(u0);
  const mat::Csr global = gs.rhs_jacobian(u0);

  const auto x = testing::random_x(global.cols(), 7);
  Vector xg(global.cols());
  for (Index i = 0; i < xg.size(); ++i) {
    xg[i] = x[static_cast<std::size_t>(i)];
  }
  Vector y_seq;
  global.spmv(xg, y_seq);

  auto layout = std::make_shared<par::Layout>(
      par::Layout::even_blocked(global.rows(), cfg.ranks, 2));
  par::Fabric::run(cfg.ranks, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.diag_format = cfg.diag;
    opts.offdiag_format = cfg.offdiag;
    opts.block_size = 2;
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, opts);
    par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.set_from_global(xg);
    // run twice: plans and ghost buffers must be reusable
    a.spmv(xp, yp, comm);
    a.spmv(xp, yp, comm);
    const Vector y_par = yp.gather_all(comm);
    for (Index i = 0; i < y_seq.size(); ++i) {
      EXPECT_NEAR(y_par[i], y_seq[i], 1e-11) << "row " << i;
    }
  });
}

std::vector<ParConfig> par_configs() {
  std::vector<ParConfig> configs;
  for (par::DiagFormat diag :
       {par::DiagFormat::kCsr, par::DiagFormat::kCsrPerm,
        par::DiagFormat::kSell, par::DiagFormat::kBcsr}) {
    for (par::OffdiagFormat offdiag :
         {par::OffdiagFormat::kCompressedCsr, par::OffdiagFormat::kSell}) {
      for (int ranks : {1, 2, 4}) {
        configs.push_back({diag, offdiag, ranks});
      }
    }
  }
  return configs;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ParFormatGrid, ::testing::ValuesIn(par_configs()),
    [](const ::testing::TestParamInfo<ParConfig>& p) {
      return std::string(par::diag_format_name(p.param.diag)) + "_" +
             (p.param.offdiag == par::OffdiagFormat::kSell ? "osell"
                                                           : "occsr") +
             "_r" + std::to_string(p.param.ranks);
    });

}  // namespace
}  // namespace kestrel
