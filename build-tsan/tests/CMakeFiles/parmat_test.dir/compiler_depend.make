# Empty compiler generated dependencies file for parmat_test.
# This may be replaced when dependencies are built.
