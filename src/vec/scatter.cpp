#include "vec/scatter.hpp"

#include "base/error.hpp"

namespace kestrel {

Scatter::Scatter(IndexSet from, IndexSet to)
    : from_(std::move(from)), to_(std::move(to)) {
  KESTREL_CHECK(from_.size() == to_.size(),
                "scatter from/to must have equal length");
}

void Scatter::forward(const Vector& src, Vector& dst) const {
  for (Index i = 0; i < from_.size(); ++i) {
    KESTREL_ASSERT(from_[i] < src.size() && to_[i] < dst.size(),
                   "scatter index out of range");
    dst[to_[i]] = src[from_[i]];
  }
}

void Scatter::reverse_add(const Vector& dst, Vector& src) const {
  for (Index i = 0; i < from_.size(); ++i) {
    KESTREL_ASSERT(from_[i] < src.size() && to_[i] < dst.size(),
                   "scatter index out of range");
    src[from_[i]] += dst[to_[i]];
  }
}

void Scatter::gather(const Scalar* src, Scalar* out) const {
  for (Index i = 0; i < from_.size(); ++i) out[i] = src[from_[i]];
}

void Scatter::scatter_to(const Scalar* in, Scalar* dst) const {
  for (Index i = 0; i < to_.size(); ++i) dst[to_[i]] = in[i];
}

}  // namespace kestrel
