file(REMOVE_RECURSE
  "CMakeFiles/matrix_solver_grid_test.dir/matrix_solver_grid_test.cpp.o"
  "CMakeFiles/matrix_solver_grid_test.dir/matrix_solver_grid_test.cpp.o.d"
  "matrix_solver_grid_test"
  "matrix_solver_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_solver_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
