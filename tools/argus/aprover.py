"""Argus entailment prover.

Decides queries of the form `p >= 0` (and sugar: lt/le/eq) against a fact
database collected from view contracts and the abstract interpreter's path
conditions.  The pipeline:

  1. Constraint closure — instantiate array axioms (monotonicity, element
     ranges), linearize opaque OpTerms (div/mod/popcount/min/max/ceildiv)
     with sound bounds, strengthen inequalities through the divisibility
     lattice (if c | g and g >= 1 then g >= c — the argument that makes
     SELL slice arithmetic sound), and saturate products against provably
     nonnegative atoms for nonlinear queries (BCSR's k*bs^2 + r*bs + c).

  2. Query-directed Fourier–Motzkin elimination — repeatedly substitute a
     bounding constraint for one monomial of the query until the residue is
     a constant.  Branching is capped; failures are memoized.

Everything is sound-for-proofs: a `True` answer means the inequality follows
from the facts; `False` means "could not prove", which Argus reports as a
violation with the residual obligation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from apoly import ArrElem, Monomial, OpTerm, Poly, Sym
from apoly import _mono_key as _mono_name

MAX_DEPTH = 14
MAX_NODES = 20000
MAX_BRANCH = 10


def _divisor_monos(m: Monomial):
    """All divisor monomials of m (per-atom power 0..p), zero powers omitted.

    Yielded tuples preserve the sorted atom order of the input, so their
    _mono_name keys are canonical.
    """
    items = list(m)

    def rec(i: int):
        if i == len(items):
            yield ()
            return
        at, p = items[i]
        for rest in rec(i + 1):
            for q in range(p + 1):
                yield (((at, q),) + rest) if q else rest

    seen = set()
    for d in rec(0):
        t = tuple(d)
        if t not in seen:
            seen.add(t)
            yield t


class FactDB:
    """Facts known at a program point. Copy-on-branch."""

    def __init__(self):
        self.ineqs: List[Poly] = []          # each p means p >= 0
        self.divides: List[Tuple[int, Poly]] = []  # (c, p): c | p
        self.monotone: Set[str] = set()      # nondecreasing integer arrays
        # arr -> (lo, hi): every element e satisfies lo <= e < hi
        self.elem_range: Dict[str, Tuple[Poly, Poly]] = {}
        self.elem_divides: Dict[str, int] = {}   # arr -> c: c | every element
        # arr -> allowed values of arr[i+1]-arr[i]
        self.stride: Dict[str, Tuple[int, ...]] = {}
        self._keys: Set[str] = set()

    def copy(self) -> "FactDB":
        db = FactDB()
        db.ineqs = list(self.ineqs)
        db.divides = list(self.divides)
        db.monotone = set(self.monotone)
        db.elem_range = dict(self.elem_range)
        db.elem_divides = dict(self.elem_divides)
        db.stride = dict(self.stride)
        db._keys = set(self._keys)
        return db

    def add_ge0(self, p: Poly) -> None:
        if p.is_const():
            return  # trivially true facts add nothing (or are contradictions)
        k = p.key()
        if k not in self._keys:
            self._keys.add(k)
            self.ineqs.append(p)

    def add_le(self, a: Poly, b: "Poly | int") -> None:
        b = b if isinstance(b, Poly) else Poly.const(b)
        self.add_ge0(b - a)

    def add_lt(self, a: Poly, b: "Poly | int") -> None:
        b = b if isinstance(b, Poly) else Poly.const(b)
        self.add_ge0(b - a - 1)

    def add_eq0(self, p: Poly) -> None:
        self.add_ge0(p)
        self.add_ge0(-p)

    def add_eq(self, a: Poly, b: "Poly | int") -> None:
        b = b if isinstance(b, Poly) else Poly.const(b)
        self.add_eq0(a - b)

    def add_divides(self, c: int, p: Poly) -> None:
        if c > 1 and not p.is_const():
            self.divides.append((c, p))


def _mono_of(atom) -> Monomial:
    return ((atom, 1),)


class Prover:
    def __init__(self, db: FactDB):
        self.db = db
        self._closure: Optional[List[Poly]] = None
        self._nonneg_atoms: Optional[List] = None
        self._divs: List[Tuple[int, Poly]] = list(db.divides)
        self._div_keys: Set[str] = set()

    # -- public query API ---------------------------------------------------
    def prove_ge0(self, p: Poly) -> bool:
        cons = self._constraints_for(p)
        self._nodes = 0
        self._memo: Dict[str, bool] = {}
        return self._entail(p, cons, 0)

    def prove_le(self, a: Poly, b: Poly) -> bool:
        return self.prove_ge0(b - a)

    def prove_lt(self, a: Poly, b: Poly) -> bool:
        return self.prove_ge0(b - a - 1)

    def prove_eq(self, a: Poly, b: Poly) -> bool:
        d = a - b
        if d.is_const():
            return d.const_value() == 0
        return self.prove_ge0(d) and self.prove_ge0(-d)

    def divides_known(self, c: int, p: Poly) -> bool:
        self._instantiate_elem_divides(_collect_atoms([p]))
        return _lattice_divides(c, p, self._divs)

    def _instantiate_elem_divides(self, atoms) -> None:
        """divides(c, elem(arr)) facts become concrete lattice members for
        every arr element the query mentions."""
        for at in atoms:
            if isinstance(at, ArrElem) and at.arr in self.db.elem_divides:
                k = at.key()
                if k not in self._div_keys:
                    self._div_keys.add(k)
                    self._divs.append(
                        (self.db.elem_divides[at.arr], Poly.atom(at)))

    # -- closure construction ------------------------------------------------
    def _constraints_for(self, query: Poly) -> List[Poly]:
        base = self._base_closure()
        cons = list(base)
        seen = {f.key() for f in cons}

        def push(f: Poly) -> None:
            if not f.is_const():
                k = f.key()
                if k not in seen:
                    seen.add(k)
                    cons.append(f)

        # Close query-specific atoms (elem ranges, opterm bounds, monotone
        # pairs involving atoms that only occur in the query).
        for _round in range(4):
            atoms = _collect_atoms([query] + cons)
            self._instantiate_elem_divides(atoms)
            before = len(cons)
            for f in self._atom_axioms(atoms):
                push(f)
            for f in self._monotone_pairs(atoms, cons):
                push(f)
            for f in self._stride_pairs(atoms):
                push(f)
            if len(cons) == before:
                break

        for f in self._divides_strengthen(cons):
            push(f)

        if query.degree() >= 2 or any(f.degree() >= 2 for f in cons):
            targets = self._target_monomials([query] + cons)
            for f in self._saturate_products(cons, targets, query):
                push(f)
        # Symbolic-divisor div() atoms get their axioms last: the guards
        # (p >= 0, d >= 1) may need the saturated products to discharge.
        atoms = _collect_atoms([query] + cons)
        for f in self._symdiv_axioms(atoms, cons):
            push(f)
        return cons

    @staticmethod
    def _target_monomials(polys: List[Poly]) -> Set[str]:
        """Keys of nonlinear monomials occurring anywhere in the query or
        the fact set (recursing into ArrElem indices / OpTerm arguments),
        downward-closed under monomial division (rowptr[mb]*bs^2 admits
        rowptr[mb]*bs and bs^2 as elimination way-points). Product
        saturation only keeps products confined to these — FM elimination
        never benefits from a product that introduces a nonlinear monomial
        nothing else mentions."""
        monos: List = []
        seen_monos: Set[str] = set()
        siblings: Dict[str, List] = {}   # array -> its ArrElem atoms seen
        sib_keys: Set[str] = set()
        stack = list(polys)
        seen_polys = set()
        while stack:
            p = stack.pop()
            k = p.key()
            if k in seen_polys:
                continue
            seen_polys.add(k)
            for m in p.monomials():
                if sum(pw for _a, pw in m) >= 2:
                    mk = _mono_name(m)
                    if mk not in seen_monos:
                        seen_monos.add(mk)
                        monos.append(m)
            for at in p.atoms():
                if isinstance(at, ArrElem):
                    if at.key() not in sib_keys:
                        sib_keys.add(at.key())
                        siblings.setdefault(at.arr, []).append(at)
                    stack.append(at.idx)
                elif isinstance(at, OpTerm):
                    stack.extend(at.args)
        # Array-sibling closure: a monotone chain relates rowptr[i] to
        # rowptr[i+1] to rowptr[mb], so if rowptr[i]*bs^2 is a target the
        # same monomial built on any sibling rowptr[..] atom must be a
        # way-point too.
        for m in list(monos):
            for pos, (at, pw) in enumerate(m):
                if not isinstance(at, ArrElem):
                    continue
                for sib in siblings.get(at.arr, ()):
                    if sib.key() == at.key():
                        continue
                    repl = list(m)
                    repl[pos] = (sib, pw)
                    merged: Dict[str, Tuple] = {}
                    for a2, p2 in repl:
                        k2 = a2.key()
                        if k2 in merged:
                            merged[k2] = (a2, merged[k2][1] + p2)
                        else:
                            merged[k2] = (a2, p2)
                    sm = tuple(sorted(merged.values(),
                                      key=lambda ap: (ap[0].key(), ap[1])))
                    smk = _mono_name(sm)
                    if smk not in seen_monos:
                        seen_monos.add(smk)
                        monos.append(sm)
        out: Set[str] = set()
        for m in monos:
            for d in _divisor_monos(m):
                if sum(pw for _a, pw in d) >= 2:
                    out.add(_mono_name(d))
        return out

    def _symdiv_axioms(self, atoms, cons: List[Poly]) -> List[Poly]:
        """Axioms for div(p, d) with a *symbolic* divisor: when d >= 1 is
        known, 0 <= v <= p follows from p >= 0 (the exact d*v bracketing is
        nonlinear in d and deliberately not emitted)."""
        out: List[Poly] = []
        for at in atoms:
            if not (isinstance(at, OpTerm) and at.op == "div"):
                continue
            if at.args[1].is_const():
                continue
            p, d = at.args
            v = Poly.atom(at)
            if not self._quick_entail(d - 1, cons):
                continue
            if self._quick_entail(p, cons):
                out.append(v)          # v >= 0
                out.append(p - v)      # v <= p
        return out

    def _base_closure(self) -> List[Poly]:
        if self._closure is None:
            self._closure = list(self.db.ineqs)
        return self._closure

    def _atom_axioms(self, atoms) -> List[Poly]:
        out: List[Poly] = []
        for at in atoms:
            if isinstance(at, ArrElem) and at.arr in self.db.elem_range:
                lo, hi = self.db.elem_range[at.arr]
                a = Poly.atom(at)
                out.append(a - lo)          # a >= lo
                out.append(hi - 1 - a)      # a <= hi - 1
            elif isinstance(at, OpTerm):
                out.extend(self._opterm_axioms(at))
        return out

    def _opterm_axioms(self, t: OpTerm) -> List[Poly]:
        v = Poly.atom(t)
        out: List[Poly] = []
        if t.op == "div" and t.args[1].is_const():
            p, d = t.args[0], t.args[1].const_value()
            if d > 0:
                # d*v <= p <= d*v + d - 1; exact when d | p.
                out.append(p - v.scale(d))
                if _lattice_divides(d, p, self._divs):
                    out.append(v.scale(d) - p)
                else:
                    out.append(v.scale(d) + (d - 1) - p)
        elif t.op == "mod" and t.args[1].is_const():
            d = t.args[1].const_value()
            if d > 0:
                out.append(v)               # v >= 0
                out.append(Poly.const(d - 1) - v)
        elif t.op == "ceildiv" and t.args[1].is_const():
            p, d = t.args[0], t.args[1].const_value()
            if d > 0:
                # p <= d*v <= p + d - 1
                out.append(v.scale(d) - p)
                out.append(p + (d - 1) - v.scale(d))
        elif t.op == "popcount":
            width = t.args[1].const_value() if len(t.args) > 1 and \
                t.args[1].is_const() else 64
            out.append(v)
            out.append(Poly.const(width) - v)
        elif t.op == "min":
            for a in t.args:
                out.append(a - v)           # v <= each arg
        elif t.op == "max":
            for a in t.args:
                out.append(v - a)           # v >= each arg
        return out

    def _monotone_pairs(self, atoms, cons: List[Poly]) -> List[Poly]:
        """For nondecreasing arr and index polys i <= j (decided with a
        restricted sub-proof), emit arr[j] - arr[i] >= 0."""
        by_arr: Dict[str, List[ArrElem]] = {}
        for at in atoms:
            if isinstance(at, ArrElem) and at.arr in self.db.monotone:
                by_arr.setdefault(at.arr, []).append(at)
        out: List[Poly] = []
        for _arr, elems in by_arr.items():
            uniq = list({e.key(): e for e in elems}.values())
            for i, a in enumerate(uniq):
                for b in uniq[i + 1:]:
                    d = b.idx - a.idx
                    lohi = None
                    if d.is_const():
                        lohi = (a, b) if d.const_value() >= 0 else (b, a)
                    else:
                        if self._quick_entail(d, cons):
                            lohi = (a, b)
                        elif self._quick_entail(-d, cons):
                            lohi = (b, a)
                    if lohi is not None:
                        lo, hi = lohi
                        out.append(Poly.atom(hi) - Poly.atom(lo))
        return out

    def _stride_pairs(self, atoms) -> List[Poly]:
        """stride(arr) in {v...}: for adjacent elements arr[i], arr[i+1] the
        difference is bounded by min/max of the allowed value set."""
        by_arr: Dict[str, List[ArrElem]] = {}
        for at in atoms:
            if isinstance(at, ArrElem) and at.arr in self.db.stride:
                by_arr.setdefault(at.arr, []).append(at)
        out: List[Poly] = []
        for arr, elems in by_arr.items():
            vals = self.db.stride[arr]
            uniq = list({e.key(): e for e in elems}.values())
            for a in uniq:
                for b in uniq:
                    d = b.idx - a.idx
                    if d.is_const() and d.const_value() == 1:
                        diff = Poly.atom(b) - Poly.atom(a)
                        out.append(diff - min(vals))   # diff >= min
                        out.append(max(vals) - diff)   # diff <= max
        return out

    def _quick_entail(self, p: Poly, cons: List[Poly]) -> bool:
        """Bounded entailment used while *building* the closure (no monotone
        recursion, no saturation)."""
        self._nodes = 0
        self._memo = {}
        return self._entail(p, cons, MAX_DEPTH - 4)

    def _divides_strengthen(self, cons: List[Poly]) -> List[Poly]:
        """f >= 0, c | (f - s + s') ... concretely: split f into non-constant
        part g and constant s (f = g + s). If c | g then g >= -s implies
        g >= c*ceil(-s/c)."""
        moduli = sorted({c for c, _p in self.db.divides}, reverse=True)
        out: List[Poly] = []
        if not moduli:
            return out
        for f in cons:
            s = f.const_value()
            if not isinstance(s, int):
                continue
            g = f - s
            if g.is_const() or g.degree() > 1:
                continue
            for c in moduli:
                if _lattice_divides(c, g, self._divs):
                    bound = c * (-((s) // c))  # c * ceil(-s / c)
                    if bound > -s:
                        out.append(g - bound)
                    break
        return out

    def _saturate_products(self, cons: List[Poly], targets: Set[str],
                           query: Optional[Poly] = None) -> List[Poly]:
        mine = cons if query is None else [query] + cons
        nonneg = self._nonneg_atom_polys(cons, targets, mine)

        def confined(g: Poly) -> bool:
            return all(sum(pw for _a, pw in m) < 2 or _mono_name(m) in targets
                       for m in g.monomials())

        out: List[Poly] = []
        # Products of nonneg atoms alone: rowptr[mb] >= 0 is only known by
        # entailment (not a constraint), yet rowptr[mb]*bs^2 >= 0 is exactly
        # the kind of fact a degree-3 extent proof hinges on.
        for i, a in enumerate(nonneg):
            out.append(a)
            for b in nonneg[i:]:
                g = a * b
                if confined(g):
                    out.append(g)
                    for c in nonneg:
                        h = g * c
                        if h.degree() <= 3 and confined(h) and len(out) < 400:
                            out.append(h)
        for f in cons:
            if f.degree() >= 3 or len(out) >= 400:
                continue
            for a in nonneg:
                g = f * a
                if g.degree() > 3 or not confined(g):
                    continue
                out.append(g)
                for b in nonneg:
                    h = g * b
                    if h.degree() <= 3 and len(out) < 400 and confined(h):
                        out.append(h)
        return out

    def _nonneg_atom_polys(self, cons: List[Poly], targets: Set[str],
                           mine: Optional[List[Poly]] = None) -> List[Poly]:
        """Atoms provably >= 0 that can actually participate in a confined
        product: an atom outside every target monomial can never survive the
        confinement filter (its products always introduce a foreign
        monomial), so only target-monomial atoms are collected — first from
        single-monomial constraints (cheap, covers bs, c, r etc.), then via
        a bounded entailment (covers e.g. rowptr[mb], which is only nonneg
        through the monotone chain)."""
        relevant = set()
        for f in (mine if mine is not None else cons):
            for m in f.monomials():
                if _mono_name(m) in targets:
                    for atom, _pw in m:
                        relevant.add(atom.key())
        out = []
        seen = set()
        for f in cons:
            monos = list(f.monomials())
            if len(monos) != 1:
                continue
            m = monos[0]
            if len(m) != 1 or m[0][1] != 1:
                continue
            alpha = f.coeff(m)
            const = f.const_value()
            # alpha*x + const >= 0
            if alpha > 0 and const <= 0:
                atom = m[0][0]
                if atom.key() in relevant and atom.key() not in seen:
                    seen.add(atom.key())
                    out.append(Poly.atom(atom))
        if targets:
            extra = 0
            for f in (mine if mine is not None else cons):
                for m in f.monomials():
                    if _mono_name(m) not in targets:
                        continue
                    for atom, _pw in m:
                        if atom.key() in seen or extra >= 8:
                            continue
                        seen.add(atom.key())
                        if self._quick_entail(Poly.atom(atom), cons):
                            out.append(Poly.atom(atom))
                            extra += 1
        return out[:12]

    # -- Fourier–Motzkin core ------------------------------------------------
    def _entail(self, p: Poly, cons: List[Poly], depth: int) -> bool:
        if p.is_const():
            return p.const_value() >= 0
        if depth >= MAX_DEPTH or self._nodes >= MAX_NODES:
            return False
        self._nodes += 1
        key = p.key()
        if key in self._memo:
            return self._memo[key]
        self._memo[key] = False  # guard against cycles

        # Choose the monomial with the fewest usable bounding constraints.
        best = None
        for m in p.monomials():
            c = p.coeff(m)
            usable = [f for f in cons
                      if (f.coeff(m) > 0) == (c > 0) and f.coeff(m) != 0]
            if not usable:
                return False  # unbounded monomial in the needed direction
            if best is None or len(usable) < len(best[2]):
                best = (m, c, usable)
        if best is None:
            return False
        m, c, usable = best
        for f in usable[:MAX_BRANCH]:
            alpha = f.coeff(m)
            # f = alpha*m + r >= 0.
            # c > 0 (alpha > 0): m >= -r/alpha  -> p >= rest - (c/alpha)*r
            # c < 0 (alpha < 0): m <= -r/alpha  -> p >= rest - (c/alpha)*r
            r = f - Poly({m: alpha})
            rest = p - Poly({m: c})
            ratio = Fraction(c) / Fraction(alpha)
            p2 = rest - r.scale(ratio)
            if self._entail(p2, cons, depth + 1):
                self._memo[key] = True
                return True
        return False


def _collect_atoms(polys: List[Poly]) -> List:
    """All atoms occurring in `polys`, recursing into ArrElem indices and
    OpTerm arguments. Deduplicated by key, insertion-ordered."""
    out: Dict[str, object] = {}
    stack = list(polys)
    while stack:
        p = stack.pop()
        for at in p.atoms():
            k = at.key()
            if k in out:
                continue
            out[k] = at
            if isinstance(at, ArrElem):
                stack.append(at.idx)
            elif isinstance(at, OpTerm):
                stack.extend(at.args)
    return list(out.values())


def _lattice_divides(c: int, p: Poly,
                     facts: List[Tuple[int, Poly]]) -> bool:
    """Is c | p derivable from the integer lattice spanned by `facts` plus
    c*Z on every monomial?  Greedy elimination of non-constant monomials by
    integer multiples of fact polys whose modulus is a multiple of c."""
    if c <= 1:
        return True
    pool = sorted((q for cc, q in facts if cc % c == 0),
                  key=lambda q: len(q.terms))
    cur = p
    seen = set()
    for _ in range(24):
        if cur.key() in seen:
            return False
        seen.add(cur.key())
        mono = None
        for m in cur.monomials():
            if cur.coeff(m) % c != 0:
                mono = m
                break
        if mono is None:
            cv = cur.const_value()
            return isinstance(cv, int) and cv % c == 0
        hit = False
        for q in pool:
            alpha = q.coeff(mono)
            if alpha == 0:
                continue
            coef = cur.coeff(mono)
            if coef % alpha == 0:
                cur = cur - q.scale(coef // alpha)
                hit = True
                break
        if not hit:
            return False
    return False
