#pragma once
// Lightweight event profiler modeled on PETSc's -log_view: named events
// accumulate wall time, call counts and flop counts; a report prints the
// table. Used by benches and examples to attribute time to MatMult vs the
// rest of the solver stack (Figure 10 splits walltime exactly this way).

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kestrel {

class EventLog {
 public:
  /// Registers (or finds) an event by name; ids are stable for the lifetime
  /// of the log.
  int event_id(const std::string& name);

  void begin(int id);
  void end(int id, std::uint64_t flops = 0);

  double seconds(int id) const;
  std::uint64_t calls(int id) const;
  std::uint64_t flops(int id) const;
  double total_seconds() const;

  void reset();
  void report(std::ostream& os) const;

  static EventLog& global();

 private:
  struct Event {
    std::string name;
    double seconds = 0.0;
    std::uint64_t calls = 0;
    std::uint64_t flops = 0;
    std::chrono::steady_clock::time_point started{};
    bool running = false;
  };
  std::vector<Event> events_;
};

/// RAII scope timer for an event in the global log.
class ScopedEvent {
 public:
  explicit ScopedEvent(int id, std::uint64_t flops = 0)
      : id_(id), flops_(flops) {
    EventLog::global().begin(id_);
  }
  ~ScopedEvent() { EventLog::global().end(id_, flops_); }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  int id_;
  std::uint64_t flops_;
};

/// Monotonic wall clock in seconds, for ad-hoc timing in benches.
double wall_time();

}  // namespace kestrel
