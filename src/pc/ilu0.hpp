#pragma once
// ILU(0): incomplete LU factorization with zero fill-in on the CSR sparsity
// pattern, plus the triangular solves to apply it. This is the paper's
// stated future-work item ("(possibly incomplete) LU decomposition and
// triangular solves ... to make [SELL] usable with more preconditioner
// choices") — implemented here on the CSR side of the house.

#include "mat/csr.hpp"
#include "pc/pc.hpp"

namespace kestrel::pc {

class Ilu0 final : public Pc {
 public:
  explicit Ilu0(const mat::Csr& a);

  /// z = U^{-1} L^{-1} r.
  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "ilu"; }

  /// Combined LU factors on A's sparsity (L unit-diagonal, strictly below;
  /// U on and above the diagonal).
  const mat::Csr& factors() const { return lu_; }

 private:
  mat::Csr lu_;
  std::vector<Index> diag_pos_;  ///< position of the diagonal in each row
};

}  // namespace kestrel::pc
