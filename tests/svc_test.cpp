// Kestrel Bastion acceptance battery: the solve service must say "no",
// "not yet", or "stop now" — precisely, structurally, and without ever
// poisoning a neighbouring tenant.
//
// Five layers, mirroring the feature's structure:
//   1. Base tokens — Deadline/CancelSource semantics, MemoryBudget ledger
//      and its structured BudgetError, LoadWatchdog hysteresis.
//   2. Registry — per-handle accounting against the budget, structured
//      decline (nothing retained), ABFT full/degraded twin wrappers.
//   3. Deadline proof — every KSP type (CG, BiCGStab, GMRES, FGMRES,
//      Richardson, Chebyshev) interrupted mid-solve returns
//      kDeadlineExceeded within 1.5x the requested wall budget with a
//      valid partial SolveResult; SNES and TS stop between steps with the
//      last completed iterate. Cooperative cancel does the same without a
//      wall budget.
//   4. Service — admission control sheds with RejectedError exactly when
//      the bounded queue is full (deterministic under a seeded schedule),
//      the watchdog degrades before shedding, per-request metrics export.
//   5. Isolation — a sabotaged tenant's AbftError maps to kFaulted for its
//      own responses only; a concurrent clean tenant's solution is
//      bitwise identical to its solo run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "aegis/abft.hpp"
#include "app/laplacian.hpp"
#include "base/budget.hpp"
#include "base/deadline.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "ksp/context.hpp"
#include "ksp/ksp.hpp"
#include "mat/csr.hpp"
#include "mat/spgemm.hpp"
#include "prof/profiler.hpp"
#include "snes/newton.hpp"
#include "svc/registry.hpp"
#include "svc/service.hpp"
#include "svc/watchdog.hpp"
#include "ts/theta.hpp"

namespace kestrel::svc {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

Vector ones(Index n) {
  Vector b(n);
  b.set(1.0);
  return b;
}

/// Delegating wrapper that sleeps per multiply: a "slow operator" whose
/// solves reliably straddle a deadline without depending on host speed.
class SlowMatrix final : public mat::Matrix {
 public:
  SlowMatrix(mat::MatrixPtr inner, double delay_s)
      : inner_(std::move(inner)), delay_s_(delay_s) {}

  Index rows() const override { return inner_->rows(); }
  Index cols() const override { return inner_->cols(); }
  std::int64_t nnz() const override { return inner_->nnz(); }
  void spmv(const Scalar* x, Scalar* y) const override {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s_));
    inner_->spmv(x, y);
  }
  using Matrix::spmv;
  void get_diagonal(Vector& d) const override { inner_->get_diagonal(d); }
  void abft_col_checksum(Vector& c) const override {
    inner_->abft_col_checksum(c);
  }
  std::string format_name() const override {
    return "slow(" + inner_->format_name() + ")";
  }
  std::size_t storage_bytes() const override {
    return inner_->storage_bytes();
  }
  std::size_t spmv_traffic_bytes() const override {
    return inner_->spmv_traffic_bytes();
  }

 private:
  mat::MatrixPtr inner_;
  double delay_s_;
};

/// Delegating wrapper whose multiplies block on a latch until released —
/// holds a service worker deterministically busy so queue-full behaviour
/// can be asserted without timing assumptions.
class LatchMatrix final : public mat::Matrix {
 public:
  explicit LatchMatrix(mat::MatrixPtr inner) : inner_(std::move(inner)) {}

  Index rows() const override { return inner_->rows(); }
  Index cols() const override { return inner_->cols(); }
  std::int64_t nnz() const override { return inner_->nnz(); }
  void spmv(const Scalar* x, Scalar* y) const override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      entered_ = true;
      cv_.notify_all();
      cv_.wait(lock, [&] { return released_; });
    }
    inner_->spmv(x, y);
  }
  using Matrix::spmv;
  void get_diagonal(Vector& d) const override { inner_->get_diagonal(d); }
  void abft_col_checksum(Vector& c) const override {
    inner_->abft_col_checksum(c);
  }
  std::string format_name() const override {
    return "latch(" + inner_->format_name() + ")";
  }
  std::size_t storage_bytes() const override {
    return inner_->storage_bytes();
  }
  std::size_t spmv_traffic_bytes() const override {
    return inner_->spmv_traffic_bytes();
  }

  /// Blocks until a worker is inside spmv (i.e. a request is in service).
  void wait_entered() const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_; });
  }
  void release() const {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  mat::MatrixPtr inner_;
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool entered_ = false;
  mutable bool released_ = false;
};

// --------------------------------------------------------------------------
// 1. Base tokens
// --------------------------------------------------------------------------

TEST(BastionDeadline, DefaultTokenNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(BastionDeadline, WallBudgetExpires) {
  const Deadline d = Deadline::after(0.02);
  EXPECT_TRUE(d.active());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_seconds(), 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
  EXPECT_TRUE(Deadline::after(-1.0).expired());
}

TEST(BastionDeadline, CancelTripsSharedTokens) {
  CancelSource src;
  const Deadline a = Deadline().with_cancel(src);
  const Deadline b = Deadline::after(3600.0).with_cancel(src);
  EXPECT_TRUE(a.active());
  EXPECT_FALSE(a.expired());
  EXPECT_FALSE(b.expired());
  src.cancel();
  EXPECT_TRUE(a.expired());
  EXPECT_TRUE(b.expired());
  EXPECT_EQ(b.remaining_seconds(), 0.0);
  src.reset();
  EXPECT_FALSE(a.expired());
}

TEST(BastionBudget, LedgerAndStructuredDecline) {
  MemoryBudget budget;
  budget.set_limit_bytes(1000);
  budget.reserve(600, "a");
  EXPECT_EQ(budget.used_bytes(), 600u);
  budget.require(400, "fits exactly");
  try {
    budget.reserve(401, "too big");
    FAIL() << "expected BudgetError";
  } catch (const BudgetError& e) {
    EXPECT_EQ(e.requested_bytes(), 401u);
    EXPECT_EQ(e.in_use_bytes(), 600u);
    EXPECT_EQ(e.limit_bytes(), 1000u);
  }
  EXPECT_EQ(budget.used_bytes(), 600u);  // failed reserve left no residue
  budget.release(600);
  EXPECT_EQ(budget.used_bytes(), 0u);
  budget.release(50);  // over-release clamps at zero, never wraps
  EXPECT_EQ(budget.used_bytes(), 0u);
}

TEST(BastionBudget, ZeroLimitDisablesEnforcement) {
  MemoryBudget budget;
  budget.require(std::uint64_t{1} << 60, "unlimited");
  budget.reserve(std::uint64_t{1} << 60, "counted but not enforced");
  EXPECT_EQ(budget.used_bytes(), std::uint64_t{1} << 60);
}

TEST(BastionWatchdog, DegradesOnSustainedHighAndRecoversWithHysteresis) {
  WatchdogOptions opts;
  opts.window = 4;
  opts.high_watermark = 0.75;
  opts.low_watermark = 0.25;
  LoadWatchdog dog(opts);
  // One spike inside an empty window is not "sustained".
  dog.observe(8, 8);
  EXPECT_FALSE(dog.degraded());
  for (int i = 0; i < 4; ++i) dog.observe(8, 8);
  EXPECT_TRUE(dog.degraded());
  EXPECT_EQ(dog.degrade_events(), 1u);
  // Mid-band occupancy keeps the degraded mode (hysteresis, no flapping).
  for (int i = 0; i < 8; ++i) dog.observe(4, 8);
  EXPECT_TRUE(dog.degraded());
  // Sustained low load recovers.
  for (int i = 0; i < 8; ++i) dog.observe(0, 8);
  EXPECT_FALSE(dog.degraded());
  EXPECT_EQ(dog.recover_events(), 1u);
}

// --------------------------------------------------------------------------
// 2. Registry
// --------------------------------------------------------------------------

TEST(BastionRegistry, RegistersEveryFormatAndAccountsBytes) {
  const mat::Csr a = app::laplacian_dirichlet(12, 12);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  for (const char* fmt : {"csr", "csrperm", "sell", "bcsr", "talon"}) {
    HandleOptions opts;
    opts.format = fmt;
    const auto h = reg.add(std::string("m_") + fmt, a, opts);
    EXPECT_EQ(h->info.rows, a.rows());
    EXPECT_EQ(h->info.nnz, a.nnz()) << fmt;
    EXPECT_GT(h->info.bytes, 0u) << fmt;
  }
  EXPECT_EQ(reg.list().size(), 5u);
  EXPECT_EQ(reg.resident_bytes(), budget.used_bytes());
  reg.remove("m_csr");
  EXPECT_FALSE(reg.has("m_csr"));
  EXPECT_EQ(reg.resident_bytes(), budget.used_bytes());
  EXPECT_THROW(reg.get("m_csr"), Error);
  EXPECT_THROW(reg.add("m_sell", a), Error);  // duplicate name
}

TEST(BastionRegistry, OverBudgetHandleDeclinesAndRetainsNothing) {
  const mat::Csr a = app::laplacian_dirichlet(24, 24);
  MemoryBudget budget;
  budget.set_limit_bytes(64);  // far below any real matrix
  MatrixRegistry reg(budget);
  try {
    reg.add("too_big", a);
    FAIL() << "expected BudgetError";
  } catch (const BudgetError& e) {
    EXPECT_EQ(e.limit_bytes(), 64u);
    EXPECT_GT(e.requested_bytes(), 64u);
  }
  EXPECT_FALSE(reg.has("too_big"));
  EXPECT_EQ(budget.used_bytes(), 0u);
  EXPECT_EQ(reg.resident_bytes(), 0u);
}

TEST(BastionRegistry, AbftHandleCarriesFullAndDegradedTwins) {
  const mat::Csr a = app::laplacian_dirichlet(8, 8);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  HandleOptions opts;
  opts.abft = true;
  opts.degraded_verify_every = 8;
  const auto h = reg.add("guarded", a, opts);
  EXPECT_NE(h->full.get(), h->degraded.get());
  EXPECT_EQ(h->full->format_name(), "abft(csr)");
  EXPECT_EQ(h->degraded->format_name(), "abft(csr)");
  // Twins compute the same multiply (shared inner storage).
  const Vector x = ones(a.cols());
  Vector y_full, y_degraded;
  h->full->spmv(x, y_full);
  h->degraded->spmv(x, y_degraded);
  EXPECT_EQ(std::memcmp(y_full.data(), y_degraded.data(),
                        sizeof(Scalar) * static_cast<std::size_t>(a.rows())),
            0);
  // A degraded sampling interval tighter than the full wrapper's is a
  // configuration error, not a silent "verify more under overload".
  HandleOptions bad;
  bad.abft = true;
  bad.abft_opts.verify_every = 4;
  bad.degraded_verify_every = 2;
  EXPECT_THROW(reg.add("bad", a, bad), Error);
}

// --------------------------------------------------------------------------
// 3. Deadline proof: every KSP type, SNES, TS, and cooperative cancel
// --------------------------------------------------------------------------

struct KspCase {
  const char* type;
  bool chebyshev = false;
};

class BastionKspDeadline : public ::testing::TestWithParam<KspCase> {};

TEST_P(BastionKspDeadline, MidSolveDeadlineReturnsBestIterateInTime) {
  // 2304 unknowns + 2 ms per multiply: no method converges at rtol=1e-30
  // before the 200 ms budget, and no iteration is long enough to overshoot
  // the 1.5x acceptance bound.
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(48, 48));
  const SlowMatrix slow(inner, 0.002);
  const double deadline_s = 0.2;

  ksp::Settings settings;
  settings.rtol = 1e-30;
  settings.max_iterations = 1000000;
  settings.deadline = Deadline::after(deadline_s);

  // The 1/h^2-scaled 48x48 Laplacian has eigenvalues in roughly
  // [20, 1.9e4]; Richardson and Chebyshev get spectrum-aware parameters so
  // they iterate stably (no Inf/NaN escape hatch) yet far too slowly to
  // converge at rtol=1e-30 — only the deadline can stop them.
  std::unique_ptr<ksp::Solver> solver;
  if (GetParam().chebyshev) {
    solver = std::make_unique<ksp::Chebyshev>(settings, 10.0, 2.0e4);
  } else if (std::string(GetParam().type) == "richardson") {
    solver = std::make_unique<ksp::Richardson>(settings, 5e-5);
  } else {
    solver = ksp::make_solver(GetParam().type, settings);
  }

  const Vector b = ones(slow.rows());
  Vector x(slow.rows());
  x.set(0.0);
  ksp::SeqContext ctx(slow);
  const Clock::time_point t0 = Clock::now();
  const ksp::SolveResult res = solver->solve(ctx, b, x);
  const double elapsed = seconds_since(t0);

  EXPECT_EQ(res.reason, ksp::Reason::kDeadlineExceeded) << GetParam().type;
  EXPECT_FALSE(res.converged);
  // Valid partial result: progress was made, the residual is a real
  // number, and the best iterate is finite.
  EXPECT_GE(res.iterations, 1) << GetParam().type;
  EXPECT_TRUE(std::isfinite(res.residual_norm)) << GetParam().type;
  for (Index i = 0; i < x.size(); ++i) {
    ASSERT_TRUE(std::isfinite(x[i])) << GetParam().type << " x[" << i << "]";
  }
  // The acceptance bound: DeadlineExceeded within 1.5x the requested wall
  // budget (one 2 ms iteration of slack is 1% of the budget).
  EXPECT_GE(elapsed, deadline_s * 0.5) << GetParam().type;
  EXPECT_LE(elapsed, deadline_s * 1.5) << GetParam().type;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, BastionKspDeadline,
    ::testing::Values(KspCase{"cg"}, KspCase{"bicgstab"}, KspCase{"gmres"},
                      KspCase{"fgmres"}, KspCase{"richardson"},
                      KspCase{"chebyshev", true}),
    [](const ::testing::TestParamInfo<KspCase>& param_info) {
      return std::string(param_info.param.type);
    });

TEST(BastionKspDeadline, ConvergenceAtTheWireStillReportsSuccess) {
  // An easy solve under a generous deadline: the deadline must never
  // convert a success into a failure.
  const mat::Csr a = app::laplacian_dirichlet(16, 16);
  ksp::Settings settings;
  settings.rtol = 1e-10;
  settings.deadline = Deadline::after(3600.0);
  const Vector b = ones(a.rows());
  Vector x(a.rows());
  x.set(0.0);
  ksp::SeqContext ctx(a);
  const ksp::SolveResult res = ksp::Cg(settings).solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.reason, ksp::Reason::kConvergedRtol);
}

TEST(BastionKspDeadline, CooperativeCancelStopsASolveWithNoWallBudget) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(48, 48));
  const SlowMatrix slow(inner, 0.002);
  CancelSource src;
  ksp::Settings settings;
  settings.rtol = 1e-30;
  settings.max_iterations = 1000000;
  settings.deadline = Deadline().with_cancel(src);

  const Vector b = ones(slow.rows());
  Vector x(slow.rows());
  x.set(0.0);
  ksp::SeqContext ctx(slow);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    src.cancel();
  });
  const Clock::time_point t0 = Clock::now();
  const ksp::SolveResult res = ksp::Cg(settings).solve(ctx, b, x);
  const double elapsed = seconds_since(t0);
  canceller.join();
  EXPECT_EQ(res.reason, ksp::Reason::kDeadlineExceeded);
  EXPECT_GE(res.iterations, 1);
  EXPECT_LT(elapsed, 2.0);  // stopped promptly, not at max_iterations
}

TEST(BastionKspDeadline, AegisRecoveryDoesNotRestartAnExpiredSolve) {
  // kDeadlineExceeded is not a "broken" reason: with breakdown_recovery on,
  // the driver must return the expired result, not burn restarts on it.
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(32, 32));
  const SlowMatrix slow(inner, 0.002);
  ksp::Settings settings;
  settings.rtol = 1e-30;
  settings.max_iterations = 1000000;
  settings.breakdown_recovery = true;
  settings.max_restarts = 3;
  settings.deadline = Deadline::after(0.05);
  const Vector b = ones(slow.rows());
  Vector x(slow.rows());
  x.set(0.0);
  ksp::SeqContext ctx(slow);
  const ksp::SolveResult res = ksp::Cg(settings).solve(ctx, b, x);
  EXPECT_EQ(res.reason, ksp::Reason::kDeadlineExceeded);
  EXPECT_EQ(res.restarts, 0);
}

/// du/dt = -u with a sleep per residual/Jacobian so TS steps take real
/// wall time; the Jacobian is -I.
class SlowDecay final : public ts::RhsFunction {
 public:
  SlowDecay(Index n, double delay_s) : n_(n), delay_s_(delay_s) {}
  Index size() const override { return n_; }
  void rhs(const Vector& u, Vector& f) const override {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_s_));
    f.resize(n_);
    for (Index i = 0; i < n_; ++i) f[i] = -u[i];
  }
  mat::Csr rhs_jacobian(const Vector&) const override {
    return mat::add(-1.0, mat::identity(n_), 0.0, mat::identity(n_));
  }

 private:
  Index n_;
  double delay_s_;
};

TEST(BastionSnesDeadline, ExpiredTokenStopsBeforeTheFirstStep) {
  SlowDecay f(8, 0.0);
  Vector u = ones(8);
  Vector u_before(8);
  u_before.copy_from(u);
  snes::NewtonOptions opts;
  opts.deadline = Deadline::after(-1.0);  // already expired
  // Wrap through TS to exercise the propagation chain in one shot.
  ts::ThetaOptions topts;
  topts.steps = 5;
  topts.newton = opts;
  topts.deadline = opts.deadline;
  const ts::ThetaResult res = ts::theta_integrate(f, u, topts);
  EXPECT_FALSE(res.completed);
  EXPECT_TRUE(res.deadline_exceeded);
  EXPECT_EQ(res.steps_taken, 0);
  EXPECT_EQ(std::memcmp(u.data(), u_before.data(), sizeof(Scalar) * 8), 0)
      << "an expired integration must not touch the state";
}

TEST(BastionTsDeadline, MidIntegrationDeadlineKeepsLastCompletedStep) {
  // ~6 ms per step (3 residual evaluations and a Jacobian per Newton
  // iteration at 2 ms each): a 60 ms budget completes some, not all 50.
  SlowDecay f(8, 0.002);
  Vector u = ones(8);
  ts::ThetaOptions opts;
  opts.steps = 50;
  opts.dt = 0.1;
  opts.deadline = Deadline::after(0.06);
  const Clock::time_point t0 = Clock::now();
  const ts::ThetaResult res = ts::theta_integrate(f, u, opts);
  const double elapsed = seconds_since(t0);
  EXPECT_FALSE(res.completed);
  EXPECT_TRUE(res.deadline_exceeded);
  EXPECT_LT(res.steps_taken, 50);
  EXPECT_LE(elapsed, 1.0);
  // u is the state after exactly steps_taken completed steps of decay:
  // every component shrank but stayed positive and finite.
  for (Index i = 0; i < u.size(); ++i) {
    ASSERT_TRUE(std::isfinite(u[i]));
    ASSERT_GT(u[i], 0.0);
    ASSERT_LE(u[i], 1.0);
  }
}

// --------------------------------------------------------------------------
// 4. Service: admission control, shedding determinism, degradation,
//    deadlines end-to-end, metrics
// --------------------------------------------------------------------------

TEST(BastionService, ServesConcurrentTenantsToCompletion) {
  const mat::Csr a = app::laplacian_dirichlet(16, 16);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add("lap", a);
  ServiceOptions opts;
  opts.workers = 3;
  opts.queue_depth = 16;
  SolveService service(reg, opts);

  std::vector<SolveService::Ticket> tickets;
  for (int i = 0; i < 12; ++i) {
    SolveRequest req;
    req.handle = "lap";
    req.tenant = "tenant_" + std::to_string(i % 3);
    req.ksp.rtol = 1e-10;
    req.b = ones(a.rows());
    tickets.push_back(service.submit(std::move(req)));
  }
  for (auto& t : tickets) {
    const SolveResponse resp = t.wait();
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    EXPECT_TRUE(resp.ksp.converged);
    EXPECT_GE(resp.queue_wait_s, 0.0);
    EXPECT_GT(resp.solve_s, 0.0);
  }
  const SolveService::Stats st = service.stats();
  EXPECT_EQ(st.accepted, 12u);
  EXPECT_EQ(st.completed, 12u);
  EXPECT_EQ(st.shed, 0u);
  EXPECT_EQ(service.queue_depth(), 0);
}

TEST(BastionService, QueueFullShedsDeterministicallyUnderSeededSchedule) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(12, 12));
  const auto latch = std::make_shared<LatchMatrix>(inner);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add_matrix("latched", latch);

  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 2;
  SolveService service(reg, opts);

  const auto make_req = [&](const std::string& tenant) {
    SolveRequest req;
    req.handle = "latched";
    req.tenant = tenant;
    req.ksp.rtol = 1e-8;
    req.b = ones(inner->rows());
    return req;
  };

  // First request is dequeued and blocks inside the latch; wait for that
  // so the queue state below is exact, not racy.
  std::vector<SolveService::Ticket> accepted;
  accepted.push_back(service.submit(make_req("t0")));
  latch->wait_entered();

  // Seeded schedule: the tenant mix varies with the seed, the outcome must
  // not — capacity is 1 in service + queue_depth queued; everything past
  // that sheds with a structured RejectedError.
  Rng rng(20260808);
  int shed = 0;
  for (int i = 0; i < 20; ++i) {
    std::string tenant = "t";
    tenant += std::to_string(rng.next_index(4));
    try {
      accepted.push_back(service.submit(make_req(tenant)));
    } catch (const RejectedError& e) {
      ++shed;
      EXPECT_EQ(e.queue_depth(), opts.queue_depth);
      EXPECT_GT(e.retry_after_hint_s(), 0.0);
    }
  }
  EXPECT_EQ(accepted.size(), 3u);  // 1 in service + 2 queued
  EXPECT_EQ(shed, 18);
  EXPECT_EQ(service.stats().shed, 18u);

  latch->release();
  for (auto& t : accepted) {
    const SolveResponse resp = t.wait();
    EXPECT_EQ(resp.status, Status::kOk) << resp.error;
  }
  const SolveService::Stats st = service.stats();
  EXPECT_EQ(st.accepted, 3u);
  EXPECT_EQ(st.completed, 3u);
}

TEST(BastionService, WatchdogDegradesBeforeSheddingAndCapsIterations) {
  const mat::Csr a = app::laplacian_dirichlet(24, 24);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add("lap", a);

  // window 2 / high 0.25: the submit observation (occupancy 0.5) plus the
  // dequeue observation (0.0) average exactly to the watermark, so the
  // very first request is served degraded — deterministically, because
  // observations are ordered under the service lock.
  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 2;
  opts.degraded_max_iterations = 3;
  opts.watchdog.window = 2;
  opts.watchdog.high_watermark = 0.25;
  opts.watchdog.low_watermark = 0.0;
  SolveService service(reg, opts);

  SolveRequest req;
  req.handle = "lap";
  req.ksp.rtol = 1e-30;  // unreachable: only the degraded cap can stop it
  req.ksp.max_iterations = 10000;
  req.b = ones(a.rows());
  const SolveResponse resp = service.submit(std::move(req)).wait();
  EXPECT_EQ(resp.status, Status::kOk) << resp.error;
  EXPECT_TRUE(resp.degraded);
  EXPECT_LE(resp.ksp.iterations, 3);
  EXPECT_EQ(resp.ksp.reason, ksp::Reason::kDivergedMaxIts);
  EXPECT_GE(service.watchdog().degrade_events(), 1u);
  EXPECT_EQ(service.stats().degraded_served, 1u);
}

TEST(BastionService, DeadlineCoversQueueWaitAndSolve) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(48, 48));
  const auto slow = std::make_shared<SlowMatrix>(inner, 0.002);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add_matrix("slow", slow);

  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 4;
  SolveService service(reg, opts);

  SolveRequest req;
  req.handle = "slow";
  req.ksp.rtol = 1e-30;
  req.ksp.max_iterations = 1000000;
  req.b = ones(inner->rows());
  req.deadline_s = 0.2;
  const Clock::time_point t0 = Clock::now();
  const SolveResponse resp = service.submit(std::move(req)).wait();
  const double elapsed = seconds_since(t0);
  EXPECT_EQ(resp.status, Status::kDeadlineExceeded);
  EXPECT_EQ(resp.ksp.reason, ksp::Reason::kDeadlineExceeded);
  EXPECT_GE(resp.ksp.iterations, 1);
  EXPECT_LE(elapsed, 0.3);  // the acceptance 1.5x bound, end to end
  for (Index i = 0; i < resp.x.size(); ++i) {
    ASSERT_TRUE(std::isfinite(resp.x[i]));
  }
}

TEST(BastionService, ExpiredWhileQueuedResolvesWithoutSolving) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(12, 12));
  const auto latch = std::make_shared<LatchMatrix>(inner);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add_matrix("latched", latch);

  ServiceOptions opts;
  opts.workers = 1;
  opts.queue_depth = 2;
  SolveService service(reg, opts);

  SolveRequest blocker;
  blocker.handle = "latched";
  blocker.b = ones(inner->rows());
  auto t_blocker = service.submit(std::move(blocker));
  latch->wait_entered();

  SolveRequest doomed;
  doomed.handle = "latched";
  doomed.b = ones(inner->rows());
  doomed.deadline_s = 0.01;  // expires while waiting behind the blocker
  auto t_doomed = service.submit(std::move(doomed));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  latch->release();

  const SolveResponse resp = t_doomed.wait();
  EXPECT_EQ(resp.status, Status::kDeadlineExceeded);
  EXPECT_EQ(resp.solve_s, 0.0);  // never reached the solver
  EXPECT_GT(resp.queue_wait_s, 0.0);
  EXPECT_EQ(t_blocker.wait().status, Status::kOk);
}

TEST(BastionService, TicketCancelStopsARunningSolve) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(48, 48));
  const auto slow = std::make_shared<SlowMatrix>(inner, 0.002);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add_matrix("slow", slow);
  SolveService service(reg);

  SolveRequest req;
  req.handle = "slow";
  req.ksp.rtol = 1e-30;
  req.ksp.max_iterations = 1000000;
  req.b = ones(inner->rows());
  auto ticket = service.submit(std::move(req));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(ticket.done());
  ticket.cancel();
  const SolveResponse resp = ticket.wait();
  EXPECT_EQ(resp.status, Status::kDeadlineExceeded);
  EXPECT_GE(resp.ksp.iterations, 1);
}

TEST(BastionService, UnknownHandleAndBadRhsFailStructurally) {
  const mat::Csr a = app::laplacian_dirichlet(8, 8);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add("lap", a);
  SolveService service(reg);

  SolveRequest req;
  req.handle = "nonexistent";
  req.b = ones(a.rows());
  SolveResponse resp = service.submit(std::move(req)).wait();
  EXPECT_EQ(resp.status, Status::kFailed);
  EXPECT_NE(resp.error.find("unknown handle"), std::string::npos);

  SolveRequest wrong;
  wrong.handle = "lap";
  wrong.b = ones(3);  // size mismatch
  resp = service.submit(std::move(wrong)).wait();
  EXPECT_EQ(resp.status, Status::kFailed);
  EXPECT_NE(resp.error.find("rhs size"), std::string::npos);
}

TEST(BastionService, ShutdownResolvesQueuedRequestsInsteadOfHanging) {
  const auto inner =
      std::make_shared<const mat::Csr>(app::laplacian_dirichlet(12, 12));
  const auto latch = std::make_shared<LatchMatrix>(inner);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add_matrix("latched", latch);

  std::vector<SolveService::Ticket> tickets;
  {
    ServiceOptions opts;
    opts.workers = 1;
    opts.queue_depth = 4;
    SolveService service(reg, opts);
    for (int i = 0; i < 3; ++i) {
      SolveRequest req;
      req.handle = "latched";
      req.b = ones(inner->rows());
      tickets.push_back(service.submit(std::move(req)));
    }
    latch->wait_entered();
    latch->release();
    // Destructor: in-flight request finishes; still-queued ones resolve.
  }
  int ok = 0, cancelled = 0;
  for (auto& t : tickets) {
    const SolveResponse resp = t.wait();  // must not hang
    if (resp.status == Status::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(resp.status, Status::kDeadlineExceeded);
      ++cancelled;
    }
  }
  EXPECT_GE(ok, 1);  // the in-flight one at minimum
  EXPECT_EQ(ok + cancelled, 3);
}

TEST(BastionService, SubmitAfterShutdownStartsIsRejected) {
  // Covered structurally: a full queue and a stopping service both shed
  // with RejectedError from submit(); exercise the option parser here too.
  Options o;
  o.set("svc_workers", "3");
  o.set("svc_queue_depth", "5");
  o.set("svc_deadline_ms", "250");
  o.set("svc_degraded_max_it", "7");
  o.set("svc_watchdog_window", "9");
  const ServiceOptions opts = ServiceOptions::from_options(o);
  EXPECT_EQ(opts.workers, 3);
  EXPECT_EQ(opts.queue_depth, 5);
  EXPECT_NEAR(opts.default_deadline_s, 0.25, 1e-12);
  EXPECT_EQ(opts.degraded_max_iterations, 7);
  EXPECT_EQ(opts.watchdog.window, 9);
}

TEST(BastionService, ExportsScopeMetrics) {
  const mat::Csr a = app::laplacian_dirichlet(12, 12);
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add("lap", a);
  SolveService service(reg);
  SolveRequest req;
  req.handle = "lap";
  req.ksp.rtol = 1e-10;
  req.b = ones(a.rows());
  EXPECT_EQ(service.submit(std::move(req)).wait().status, Status::kOk);

  prof::Profiler p;
  service.export_metrics(p);
  const auto metrics = p.metrics();
  EXPECT_EQ(metrics.at("svc/accepted"), 1.0);
  EXPECT_EQ(metrics.at("svc/completed"), 1.0);
  EXPECT_EQ(metrics.at("svc/shed"), 0.0);
  EXPECT_EQ(metrics.at("svc/deadline_exceeded"), 0.0);
  EXPECT_GT(metrics.at("svc/total_solve_s"), 0.0);
  EXPECT_EQ(metrics.at("svc/resident_bytes"),
            static_cast<double>(reg.resident_bytes()));
}

// --------------------------------------------------------------------------
// 5. Tenant isolation
// --------------------------------------------------------------------------

TEST(BastionIsolation, SabotagedTenantFaultsAloneCleanTenantBitwiseIntact) {
  const mat::Csr clean_csr = app::laplacian_dirichlet(24, 24);

  // Solo baseline: the clean tenant's solution with nothing else running.
  Vector x_solo;
  {
    MemoryBudget budget;
    MatrixRegistry reg(budget);
    reg.add("clean", clean_csr);
    SolveService service(reg);
    SolveRequest req;
    req.handle = "clean";
    req.ksp.rtol = 1e-10;
    req.b = ones(clean_csr.rows());
    const SolveResponse resp = service.submit(std::move(req)).wait();
    ASSERT_EQ(resp.status, Status::kOk) << resp.error;
    x_solo = resp.x;
  }

  // Shared service: a sabotaged tenant (persistently corrupted operator
  // under ABFT — every multiply escalates to AbftError) hammers the
  // service while the clean tenant solves.
  MemoryBudget budget;
  MatrixRegistry reg(budget);
  reg.add("clean", clean_csr);
  auto sab_inner = std::make_shared<mat::Csr>(app::laplacian_dirichlet(8, 8));
  auto sab = std::make_shared<const aegis::AbftMatrix>(sab_inner);
  reg.add_matrix("sabotaged", sab);
  sab_inner->mutable_val()[0] += 1000.0;  // corrupt after checksum fixed

  ServiceOptions opts;
  opts.workers = 2;
  opts.queue_depth = 16;
  SolveService service(reg, opts);

  std::vector<SolveService::Ticket> sab_tickets;
  for (int i = 0; i < 6; ++i) {
    SolveRequest req;
    req.handle = "sabotaged";
    req.tenant = "attacker";
    req.b = ones(sab_inner->rows());
    sab_tickets.push_back(service.submit(std::move(req)));
  }
  SolveRequest clean_req;
  clean_req.handle = "clean";
  clean_req.tenant = "victim";
  clean_req.ksp.rtol = 1e-10;
  clean_req.b = ones(clean_csr.rows());
  auto clean_ticket = service.submit(std::move(clean_req));

  for (auto& t : sab_tickets) {
    const SolveResponse resp = t.wait();
    EXPECT_EQ(resp.status, Status::kFaulted);
    EXPECT_NE(resp.error.find("abft"), std::string::npos);
  }
  const SolveResponse clean_resp = clean_ticket.wait();
  ASSERT_EQ(clean_resp.status, Status::kOk) << clean_resp.error;
  ASSERT_EQ(clean_resp.x.size(), x_solo.size());
  EXPECT_EQ(std::memcmp(clean_resp.x.data(), x_solo.data(),
                        sizeof(Scalar) *
                            static_cast<std::size_t>(x_solo.size())),
            0)
      << "a concurrent sabotaged tenant changed the clean tenant's bits";

  const SolveService::Stats st = service.stats();
  EXPECT_EQ(st.faulted, 6u);
  EXPECT_EQ(st.completed, 1u);
  // The sabotaged handle's fault left the registry and budget coherent.
  EXPECT_TRUE(reg.has("sabotaged"));
  EXPECT_EQ(reg.resident_bytes(), budget.used_bytes());
}

}  // namespace
}  // namespace kestrel::svc
