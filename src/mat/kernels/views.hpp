#pragma once
// POD views of matrix storage handed to the ISA-specific kernel translation
// units. Keeping these plain (no methods that touch other library headers)
// lets every kernel TU compile with only its own -m flags.

#include "base/types.hpp"

namespace kestrel::mat {

/// Compressed sparse row (PETSc AIJ). rowptr has m+1 entries.
// argus-view: CsrView
// argus-let: nnz = rowptr[m]
// argus-extent: rowptr = m + 1
// argus-extent: colidx = nnz
// argus-extent: val = nnz
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: monotone(rowptr)
// argus-fact: rowptr[0] == 0
// argus-fact: elem(colidx) in [0, n)
struct CsrView {
  Index m = 0;  ///< number of rows
  Index n = 0;  ///< number of columns
  const Index* rowptr = nullptr;
  const Index* colidx = nullptr;
  const Scalar* val = nullptr;
};

/// Sliced ELLPACK (PETSc SELL), slice height `c`. For slice s the elements
/// live in val[sliceptr[s] .. sliceptr[s+1]) stored column-major within the
/// slice (c values per slice-column). rlen[i] is the true nonzero count of
/// row i (paper section 5.2); padded entries carry value 0 and a column
/// index copied from a real in-slice entry (section 5.5).
// argus-view: SellView
// argus-let: stored = sliceptr[nslices]
// argus-extent: sliceptr = nslices + 1
// argus-extent: colidx = stored
// argus-extent: val = stored
// argus-extent: rlen = m
// argus-extent: bitmask = stored / c
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: c >= 1
// argus-fact: c <= 64
// argus-fact: nslices == ceil_div(m, c)
// argus-fact: monotone(sliceptr)
// argus-fact: sliceptr[0] == 0
// argus-fact: divides(c, elem(sliceptr))
// argus-fact: maskword(bitmask)
// argus-fact: elem(colidx) in [0, n)
// argus-fact: elem(rlen) in [0, n]
struct SellView {
  Index m = 0;          ///< logical number of rows (before slice padding)
  Index n = 0;          ///< number of columns
  Index c = 0;          ///< slice height
  Index nslices = 0;    ///< number of slices = ceil(m / c)
  const Index* sliceptr = nullptr;  ///< nslices+1 entries, offsets into val
  const Index* colidx = nullptr;
  const Scalar* val = nullptr;
  const Index* rlen = nullptr;
  /// Optional ESB-style bit mask (one bit per stored element, slice-column
  /// granularity: bit k of mask[word] corresponds to lane k). Null unless
  /// the bit-array variant was requested (ablation of paper section 5.3).
  const std::uint64_t* bitmask = nullptr;
};

/// CSR grouped by equal row length (PETSc AIJPERM). Rows are NOT reordered
/// in memory; `perm` lists row ids group by group and groups of equal-length
/// rows are vectorized across rows (paper section 2.4).
// argus-view: CsrPermView
// argus-field: csr : CsrView
// argus-extent: group_begin = ngroups + 1
// argus-extent: perm = csr.m
// argus-extent: group_rlen = ngroups
// argus-fact: ngroups >= 0
// argus-fact: monotone(group_begin)
// argus-fact: group_begin[0] == 0
// argus-fact: group_begin[ngroups] == csr.m
// argus-fact: elem(perm) in [0, csr.m)
// argus-fact: group(perm, group_begin, group_rlen, csr.rowptr)
struct CsrPermView {
  CsrView csr;
  Index ngroups = 0;
  const Index* group_begin = nullptr;  ///< ngroups+1 offsets into perm
  const Index* perm = nullptr;         ///< row ids, grouped
  const Index* group_rlen = nullptr;   ///< common row length per group
};

/// SPC5-style beta(r,c) block format (Talon): rows are grouped into panels
/// of r in {1, 2, 4} adjacent rows; each panel owns a run of blocks, each
/// covering up to kZmmDoubles consecutive columns starting at block_col[b].
/// Byte j of block_mask[b] is the 8-bit column-presence mask of panel row j,
/// and the nonzero values are packed densely in (block, row, mask-bit)
/// order with NO zero padding — kernels expand them into vector lanes with
/// vpexpandpd / mask loads and advance the value pointer by popcount.
// argus-view: TalonView
// argus-let: nblocks = panel_blockptr[npanels]
// argus-let: stored = panel_valptr[npanels]
// argus-extent: panel_row = npanels + 1
// argus-extent: panel_blockptr = npanels + 1
// argus-extent: panel_valptr = npanels + 1
// argus-extent: block_col = nblocks
// argus-extent: block_mask = nblocks
// argus-extent: val = stored
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: npanels >= 0
// argus-fact: monotone(panel_row)
// argus-fact: monotone(panel_blockptr)
// argus-fact: monotone(panel_valptr)
// argus-fact: panel_row[0] == 0
// argus-fact: panel_blockptr[0] == 0
// argus-fact: panel_valptr[0] == 0
// argus-fact: panel_row[npanels] == m
// argus-fact: elem(block_col) in [0, n)
// argus-fact: stride(panel_row) in {1, 2, 4}
// argus-fact: maskbit(block_mask, block_col, n)
// argus-fact: packed(val, panel_valptr, block_mask)
struct TalonView {
  Index m = 0;        ///< number of rows
  Index n = 0;        ///< number of columns
  Index npanels = 0;  ///< number of row panels
  /// npanels+1; panel p covers rows [panel_row[p], panel_row[p+1]), so its
  /// height r = panel_row[p+1] - panel_row[p] is 1, 2 or 4.
  const Index* panel_row = nullptr;
  const Index* panel_blockptr = nullptr;  ///< npanels+1 offsets into block_*
  const Index* panel_valptr = nullptr;    ///< npanels+1 offsets into val
  const Index* block_col = nullptr;       ///< first column of each block
  /// One 8-bit mask per panel row, packed little-endian: bit k of byte j set
  /// means A(panel_row[p] + j, block_col[b] + k) is stored.
  const std::uint32_t* block_mask = nullptr;
  const Scalar* val = nullptr;  ///< packed nonzeros, no padding
};

/// Kestrel Slim CSR: CSR plus optional compressed side streams (ISSUE 9 /
/// ROADMAP "bytes are the bottleneck"). `idx16` activates the compressed
/// column stream — per-row base column plus unsigned 16-bit offsets,
/// unpacked in-register with vpmovzxwd — and `fp32` activates the
/// single-precision value stream (vcvtps2pd on load, accumulation stays
/// double). The fat colidx/val arrays are always present so kernels can mix
/// modes; the traffic model bills the inactive streams at zero (`alt`).
/// The `span` fact is the contract that makes compressed gathers provable:
/// for every row i and every k in [rowptr[i], rowptr[i+1]),
/// 0 <= base[i] + off16[k] < n.
// argus-view: CsrSlimView
// argus-let: nnz = rowptr[m]
// argus-extent: rowptr = m + 1
// argus-extent: colidx = nnz
// argus-extent: val = nnz
// argus-extent: base = m
// argus-extent: off16 = nnz
// argus-extent: val32 = nnz
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: monotone(rowptr)
// argus-fact: rowptr[0] == 0
// argus-fact: elem(colidx) in [0, n)
// argus-fact: span(off16, base, rowptr, n)
struct CsrSlimView {
  Index m = 0;      ///< number of rows
  Index n = 0;      ///< number of columns
  Index idx16 = 0;  ///< 1 = base+off16 column stream active
  Index fp32 = 0;   ///< 1 = float value stream active
  const Index* rowptr = nullptr;
  const Index* colidx = nullptr;  ///< fat indices (read when idx16 == 0)
  const Scalar* val = nullptr;    ///< fat values (read when fp32 == 0)
  const Index* base = nullptr;    ///< per-row first column (idx16 mode)
  const std::uint16_t* off16 = nullptr;  ///< column offsets from base[i]
  const float* val32 = nullptr;          ///< fp32 value stream
};

/// Kestrel Slim SELL: SELL plus the compressed side streams. The base
/// column is per SLICE (the slim builder requires every slice's column
/// span to fit 16 bits, falling back to fat storage otherwise), so for
/// slice s and every stored position k in [sliceptr[s], sliceptr[s+1]),
/// 0 <= base[s] + off16[k] < n — the same `span` contract as slim CSR with
/// sliceptr as the segment table.
// argus-view: SellSlimView
// argus-let: stored = sliceptr[nslices]
// argus-extent: sliceptr = nslices + 1
// argus-extent: colidx = stored
// argus-extent: val = stored
// argus-extent: base = nslices
// argus-extent: off16 = stored
// argus-extent: val32 = stored
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: c >= 1
// argus-fact: c <= 64
// argus-fact: nslices == ceil_div(m, c)
// argus-fact: monotone(sliceptr)
// argus-fact: sliceptr[0] == 0
// argus-fact: divides(c, elem(sliceptr))
// argus-fact: elem(colidx) in [0, n)
// argus-fact: span(off16, base, sliceptr, n)
struct SellSlimView {
  Index m = 0;        ///< logical number of rows (before slice padding)
  Index n = 0;        ///< number of columns
  Index c = 0;        ///< slice height
  Index nslices = 0;  ///< number of slices = ceil(m / c)
  Index idx16 = 0;    ///< 1 = base+off16 column stream active
  Index fp32 = 0;     ///< 1 = float value stream active
  const Index* sliceptr = nullptr;  ///< nslices+1 entries, offsets into val
  const Index* colidx = nullptr;    ///< fat indices (read when idx16 == 0)
  const Scalar* val = nullptr;      ///< fat values (read when fp32 == 0)
  const Index* base = nullptr;      ///< per-slice base column (idx16 mode)
  const std::uint16_t* off16 = nullptr;  ///< column offsets from base[s]
  const float* val32 = nullptr;          ///< fp32 value stream
};

/// Kestrel Slim BCSR: per-BLOCK-ROW base plus 16-bit offsets, both in
/// SCALAR column units (base[ib] = bs * first block column of the row,
/// off16[k] = bs * (colidx[k] - first block column)), so the kernel indexes
/// x as x[base[ib] + off16[k] + c] with c in [0, bs) and the span bound
/// stays linear: 0 <= base[ib] + off16[k] <= nb*bs - bs for every block
/// slot k in [rowptr[ib], rowptr[ib+1]). The slim builder requires
/// bs * (block column span) to fit 16 bits.
// argus-view: BcsrSlimView
// argus-let: nblocks = rowptr[mb]
// argus-extent: rowptr = mb + 1
// argus-extent: colidx = nblocks
// argus-extent: val = nblocks * bs * bs
// argus-extent: base = mb
// argus-extent: off16 = nblocks
// argus-extent: val32 = nblocks * bs * bs
// argus-fact: mb >= 0
// argus-fact: nb >= 0
// argus-fact: bs >= 1
// argus-fact: monotone(rowptr)
// argus-fact: rowptr[0] == 0
// argus-fact: elem(colidx) in [0, nb)
// argus-fact: span(off16, base, rowptr, nb * bs - bs + 1)
struct BcsrSlimView {
  Index mb = 0;     ///< number of block rows
  Index nb = 0;     ///< number of block cols
  Index bs = 0;     ///< block size
  Index idx16 = 0;  ///< 1 = base+off16 column stream active
  Index fp32 = 0;   ///< 1 = float value stream active
  const Index* rowptr = nullptr;  ///< mb+1, in blocks
  const Index* colidx = nullptr;  ///< fat block columns (idx16 == 0)
  const Scalar* val = nullptr;    ///< fat values (fp32 == 0)
  const Index* base = nullptr;    ///< per-block-row base, scalar columns
  const std::uint16_t* off16 = nullptr;  ///< offsets, scalar columns
  const float* val32 = nullptr;          ///< fp32 value stream
};

/// Kestrel Slim Talon: Talon's block_col/block_mask stream is already a
/// compressed index encoding (a base column plus a presence mask), so slim
/// Talon only swaps the packed value stream to fp32 — val32 mirrors val
/// entry for entry, packed by the same masks.
// argus-view: TalonSlimView
// argus-let: nblocks = panel_blockptr[npanels]
// argus-let: stored = panel_valptr[npanels]
// argus-extent: panel_row = npanels + 1
// argus-extent: panel_blockptr = npanels + 1
// argus-extent: panel_valptr = npanels + 1
// argus-extent: block_col = nblocks
// argus-extent: block_mask = nblocks
// argus-extent: val = stored
// argus-extent: val32 = stored
// argus-fact: m >= 0
// argus-fact: n >= 0
// argus-fact: npanels >= 0
// argus-fact: monotone(panel_row)
// argus-fact: monotone(panel_blockptr)
// argus-fact: monotone(panel_valptr)
// argus-fact: panel_row[0] == 0
// argus-fact: panel_blockptr[0] == 0
// argus-fact: panel_valptr[0] == 0
// argus-fact: panel_row[npanels] == m
// argus-fact: elem(block_col) in [0, n)
// argus-fact: stride(panel_row) in {1, 2, 4}
// argus-fact: maskbit(block_mask, block_col, n)
// argus-fact: packed(val, panel_valptr, block_mask)
// argus-fact: packed(val32, panel_valptr, block_mask)
struct TalonSlimView {
  Index m = 0;        ///< number of rows
  Index n = 0;        ///< number of columns
  Index npanels = 0;  ///< number of row panels
  Index fp32 = 0;     ///< 1 = float value stream active
  const Index* panel_row = nullptr;
  const Index* panel_blockptr = nullptr;
  const Index* panel_valptr = nullptr;
  const Index* block_col = nullptr;
  const std::uint32_t* block_mask = nullptr;
  const Scalar* val = nullptr;   ///< fat packed values (fp32 == 0)
  const float* val32 = nullptr;  ///< fp32 packed values
};

/// Block CSR (PETSc BAIJ) with square bs x bs blocks stored row-major per
/// block; brow/bcol are in block units.
// argus-view: BcsrView
// argus-let: nblocks = rowptr[mb]
// argus-extent: rowptr = mb + 1
// argus-extent: colidx = nblocks
// argus-extent: val = nblocks * bs * bs
// argus-fact: mb >= 0
// argus-fact: nb >= 0
// argus-fact: bs >= 1
// argus-fact: monotone(rowptr)
// argus-fact: rowptr[0] == 0
// argus-fact: elem(colidx) in [0, nb)
struct BcsrView {
  Index mb = 0;  ///< number of block rows
  Index nb = 0;  ///< number of block cols
  Index bs = 0;  ///< block size
  const Index* rowptr = nullptr;  ///< mb+1, in blocks
  const Index* colidx = nullptr;  ///< block column indices
  const Scalar* val = nullptr;    ///< bs*bs scalars per block
};

}  // namespace kestrel::mat
