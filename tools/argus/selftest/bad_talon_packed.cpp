// SELF-TEST FIXTURE — Talon AVX-512 kernel advancing the packed value
// pointer by a full vector (8) per block instead of popcount(mask). The
// packed stream stores exactly one double per set mask bit, so any block
// whose mask byte is not all-ones makes the pointer drift forward past
// the bytes the mask paid for.
//
// expect-violation: packed-stream :: advanced past the mask-byte budget

#include <immintrin.h>

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: talon_spmv_avx512
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void talon_spmv_avx512(const TalonView& a, const Scalar* x, Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    const Index row0 = a.panel_row[p];
    const Scalar* v = a.val + a.panel_valptr[p];
    __m512d acc = _mm512_setzero_pd();
    for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
      const Index c0 = a.block_col[b];
      const std::uint32_t mask = a.block_mask[b];
      __m512d xv;
      if (c0 + kZmmDoubles <= a.n) {
        xv = _mm512_loadu_pd(x + c0);
      } else {
        const auto edge = static_cast<__mmask8>(
            (1u << static_cast<unsigned>(a.n - c0)) - 1u);
        xv = _mm512_maskz_loadu_pd(edge, x + c0);
      }
      const auto mj = static_cast<__mmask8>(mask & 0xFFu);
      const __m512d vals = _mm512_maskz_expandloadu_pd(mj, v);
      acc = _mm512_mask3_fmadd_pd(vals, xv, acc, mj);
      v += 8;  // BUG: should advance by popcount(mj)
    }
    y[row0] = _mm512_reduce_add_pd(acc);
  }
}

}  // namespace

void register_talon_packed_fixture() {
  KESTREL_REGISTER_KERNEL(kTalonSpmv, kAvx512, talon_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
