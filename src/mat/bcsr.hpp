#pragma once
// Block CSR (PETSc BAIJ, paper sections 1/3.2): for PDE systems with
// multiple degrees of freedom per grid point the matrix consists of small
// dense bs x bs blocks; storing them as blocks removes per-entry column
// indices and enables register reuse of x. The Gray–Scott system (2 dof)
// produces 2x2 blocks.

#include <vector>

#include "base/aligned.hpp"
#include "mat/kernels/views.hpp"
#include "mat/matrix.hpp"
#include "mat/partition.hpp"

namespace kestrel::mat {

class Csr;

class Bcsr final : public Matrix {
 public:
  Bcsr() = default;
  /// Converts from CSR; every nonzero must belong to a bs x bs block grid
  /// cell (missing entries within an occupied block are stored as 0).
  Bcsr(const Csr& csr, Index bs);

  Index rows() const override { return mb_ * bs_; }
  Index cols() const override { return nb_ * bs_; }
  std::int64_t nnz() const override { return nnz_; }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void spmv_wide(const Scalar* x, Scalar* y) const override;
  bool set_slim(const SlimOptions& opts) override;
  bool slim_active() const override { return slim_.active(); }
  void get_diagonal(Vector& d) const override;
  void abft_col_checksum(Vector& c) const override;
  std::string format_name() const override { return "bcsr"; }
  std::size_t storage_bytes() const override;
  std::size_t spmv_traffic_bytes() const override;

  Index block_size() const { return bs_; }
  Index block_rows() const { return mb_; }
  std::int64_t stored_blocks() const {
    return mb_ == 0 ? 0 : rowptr_[static_cast<std::size_t>(mb_)];
  }

  BcsrView view() const {
    return {mb_, nb_, bs_, rowptr_.data(), colidx_.data(), val_.data()};
  }

  // Kestrel Slim ----------------------------------------------------------
  const SlimStore& slim() const { return slim_; }
  BcsrSlimView slim_view() const;
  /// Traffic of the fat double/int32 SpMV.
  std::size_t fat_spmv_traffic_bytes() const;
  /// Traffic of the fully slim (idx16 + fp32) SpMV.
  std::size_t slim_spmv_traffic_bytes() const;

  // Kestrel Flock ----------------------------------------------------------
  // flock-pool-safe: blockrow
  /// Re-plans the stored partition. Units are BLOCK rows (granularity: a
  /// thread never splits a bs x bs block), weighted by stored scalar
  /// entries (blocks * bs^2).
  void repartition(int nparts) override;
  const FlockPartition& partition() const { return part_; }

 private:
  void spmv_fat(const Scalar* x, Scalar* y) const;
  void spmv_slim(const Scalar* x, Scalar* y) const;

  Index mb_ = 0, nb_ = 0, bs_ = 0;
  std::int64_t nnz_ = 0;  ///< logical scalar nonzeros (pre-fill)
  AlignedBuffer<Index> rowptr_;
  AlignedBuffer<Index> colidx_;
  AlignedBuffer<Scalar> val_;
  FlockPartition part_;
  SlimStore slim_;
};

}  // namespace kestrel::mat
