// Fabric communication benchmark (Kestrel Slipstream).
//
// Phase A calibrates the postal model alpha + beta*bytes (perf/commmodel.hpp)
// from a 2-rank persistent ping-pong; the constants feed the Figure 10
// multinode model's halo term (see EXPERIMENTS.md for the procedure).
//
// Phase B is the headline race: an 8-rank ring ghost exchange — every rank
// trades one message with each neighbor per round, the shape of ParMatrix's
// halo update — run through both fabric transports:
//   * mailbox     the seed path: every message allocates a payload vector,
//                 copies into the mailbox, and copies again into the ghost
//                 slice (2 copies + 1 allocation per message);
//   * persistent  Slipstream channels: one memcpy straight into the
//                 registered ghost slice, zero steady-state allocations.
// Rounds are barrier-synced, timed best-of-trials, and reduced with a max
// across ranks so the reported figure is the slowest rank's, as in MPI
// benches. The exported BENCH_comm.json carries both times, the speedup
// (CI gates on >= 1.3x), and the fabric counters behind the story.

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "par/comm.hpp"
#include "perf/commmodel.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace {

using namespace kestrel;
using par::Comm;

constexpr int kTagGhost = 7;

/// Cross-rank totals of the counters a transport accrued during the timed
/// rounds only (warmup and barrier traffic excluded).
struct ExchangeCounters {
  std::int64_t messages = 0;
  std::int64_t allocs = 0;
  std::int64_t copies = 0;
  std::int64_t send_parks = 0;
  std::int64_t wait_any_wakeups = 0;
};

struct ExchangeResult {
  double seconds_per_round = 0.0;  ///< slowest rank, best trial
  int timed_rounds = 0;
  ExchangeCounters counters;
};

/// Times `iters` ring-exchange rounds on `nranks` ranks with the chosen
/// transport. Every rank sends `count` scalars to each ring neighbor and
/// receives the same into its 2*count ghost slice.
ExchangeResult time_exchange(int nranks, Index count, int iters, int trials,
                             bool persistent) {
  ExchangeResult result;
  result.timed_rounds = iters;  // length of the counter window below
  par::FabricOptions fopts;
  fopts.check = false;  // measure the fast path, not the instrumented one
  par::Fabric::run(nranks, fopts, [&](Comm& comm) {
    const int left = (comm.rank() + nranks - 1) % nranks;
    const int right = (comm.rank() + 1) % nranks;
    std::vector<Scalar> sendbuf(static_cast<std::size_t>(count));
    for (Index i = 0; i < count; ++i) {
      sendbuf[static_cast<std::size_t>(i)] = comm.rank() + 1e-3 * i;
    }
    std::vector<Scalar> ghost(2 * static_cast<std::size_t>(count), 0.0);

    std::shared_ptr<par::PersistentExchange> ex;
    if (persistent) {
      ex = comm.open_exchange(
          {{left, count}, {right, count}},
          {{left, ghost.data(), count}, {right, ghost.data() + count, count}});
    }
    auto round = [&] {
      if (persistent) {
        ex->arm();
        ex->send(0, sendbuf.data(), count);
        ex->send(1, sendbuf.data(), count);
        ex->wait_all();
      } else {
        comm.isend(left, kTagGhost, sendbuf.data(),
                   static_cast<std::size_t>(count));
        comm.isend(right, kTagGhost, sendbuf.data(),
                   static_cast<std::size_t>(count));
        const std::vector<Scalar> a = comm.recv(left, kTagGhost);
        std::copy(a.begin(), a.end(), ghost.begin());
        comm.add_payload_copy();
        const std::vector<Scalar> b = comm.recv(right, kTagGhost);
        std::copy(b.begin(), b.end(), ghost.begin() + count);
        comm.add_payload_copy();
      }
    };

    for (int i = 0; i < 3; ++i) round();  // warm up (channels, mailbox maps)

    double best = 1e300;
    for (int t = 0; t < trials; ++t) {
      comm.barrier();
      const double t0 = wall_time();
      for (int i = 0; i < iters; ++i) round();
      const double dt = wall_time() - t0;
      // The exchange is only done when the slowest rank is done.
      best = std::min(best, comm.allreduce(dt, Comm::ReduceOp::kMax));
    }

    // Counter window: a separate collective-free block, so barrier/allreduce
    // mailbox traffic cannot leak into the per-exchange figures and the
    // persistent path's steady-state allocs come out exactly zero.
    comm.barrier();
    const par::FabricStats before = comm.stats();
    for (int i = 0; i < iters; ++i) round();
    const par::FabricStats after = comm.stats();  // before any collective
    auto total = [&](std::uint64_t a, std::uint64_t b) {
      return comm.allreduce(static_cast<std::int64_t>(a - b));
    };
    const ExchangeCounters counters = {
        total(after.mailbox_msgs + after.channel_sends,
              before.mailbox_msgs + before.channel_sends),
        total(after.mailbox_allocs, before.mailbox_allocs),
        total(after.payload_copies, before.payload_copies),
        total(after.send_parks, before.send_parks),
        total(after.wait_any_wakeups, before.wait_any_wakeups)};
    if (comm.rank() == 0) {
      result.seconds_per_round = best / iters;
      result.counters = counters;
    }
    volatile Scalar sink = ghost[0];  // keep the exchange observable
    (void)sink;
  });
  return result;
}

double per_round(const ExchangeResult& r, std::int64_t counter) {
  return static_cast<double>(counter) / static_cast<double>(r.timed_rounds);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);

  bench::header("Fabric comm benchmark: postal model + ghost exchange");

  // -- Phase A: postal-model calibration (2-rank persistent ping-pong) ----
  const int cal_reps = bench::scaled_reps(50, 6);
  const perf::CommModel cm = perf::CommModel::measure_fabric(cal_reps);
  std::printf("\n-- Phase A: postal model t(bytes) = alpha + beta*bytes --\n");
  std::printf("alpha (latency)      %10.3f us\n", cm.alpha_s * 1e6);
  std::printf("beta  (per byte)     %10.4f ns  (%.2f GB/s effective)\n",
              cm.beta_s_per_byte * 1e9,
              cm.beta_s_per_byte > 0.0 ? 1.0 / (cm.beta_s_per_byte * 1e9)
                                       : 0.0);
  std::printf("modeled 8 KiB msg    %10.3f us\n",
              cm.message_seconds(8192.0) * 1e6);

  // -- Phase B: 8-rank ring ghost exchange, mailbox vs persistent --------
  const int nranks = 8;
  const Index count = bench::scaled(1024, 256);
  const int iters = bench::scaled_reps(400, 60);
  const int trials = bench::scaled_reps(3, 2);
  std::printf(
      "\n-- Phase B: %d-rank ring exchange, 2 x %d scalars per rank --\n",
      nranks, static_cast<int>(count));
  const ExchangeResult mailbox =
      time_exchange(nranks, count, iters, trials, /*persistent=*/false);
  const ExchangeResult persistent =
      time_exchange(nranks, count, iters, trials, /*persistent=*/true);

  const double mailbox_us = mailbox.seconds_per_round * 1e6;
  const double persistent_us = persistent.seconds_per_round * 1e6;
  const double speedup =
      persistent_us > 0.0 ? mailbox_us / persistent_us : 0.0;
  std::printf("%-12s %14s %16s %16s\n", "transport", "us/exchange",
              "allocs/exchange", "copies/exchange");
  std::printf("%-12s %14.2f %16.2f %16.2f\n", "mailbox", mailbox_us,
              per_round(mailbox, mailbox.counters.allocs),
              per_round(mailbox, mailbox.counters.copies));
  std::printf("%-12s %14.2f %16.2f %16.2f\n", "persistent", persistent_us,
              per_round(persistent, persistent.counters.allocs),
              per_round(persistent, persistent.counters.copies));
  std::printf("persistent parks/exchange: %.2f, wait_any wakeups/exchange: "
              "%.2f\n",
              per_round(persistent, persistent.counters.send_parks),
              per_round(persistent, persistent.counters.wait_any_wakeups));
  std::printf("exchange speedup (mailbox / persistent): %.2fx\n", speedup);

  if (!bench::json_path().empty()) {
    // kestrel-scope-metrics-v1 artifact for the bench-smoke CI job, which
    // gates on exchange_speedup >= 1.3 (the Slipstream acceptance bar).
    prof::Profiler log;
    log.set_metric("comm_alpha_s", cm.alpha_s);
    log.set_metric("comm_beta_s_per_byte", cm.beta_s_per_byte);
    log.set_metric("exchange_us/mailbox", mailbox_us);
    log.set_metric("exchange_us/persistent", persistent_us);
    log.set_metric("exchange_speedup", speedup);
    log.set_metric("fabric/mailbox_allocs_per_exchange",
                   per_round(mailbox, mailbox.counters.allocs));
    log.set_metric("fabric/persistent_allocs_per_exchange",
                   per_round(persistent, persistent.counters.allocs));
    log.set_metric("fabric/persistent_copies_per_exchange",
                   per_round(persistent, persistent.counters.copies));
    log.set_metric("fabric/mailbox_copies_per_exchange",
                   per_round(mailbox, mailbox.counters.copies));
    std::ofstream out(bench::json_path());
    if (!out.good()) {
      std::fprintf(stderr, "cannot open %s\n", bench::json_path().c_str());
      return 1;
    }
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("\nwrote %s\n", bench::json_path().c_str());
  }
  return 0;
}
