file(REMOVE_RECURSE
  "CMakeFiles/sell_test.dir/sell_test.cpp.o"
  "CMakeFiles/sell_test.dir/sell_test.cpp.o.d"
  "sell_test"
  "sell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
