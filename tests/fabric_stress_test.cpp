// Randomized fabric stress (Kestrel Sentry): 8 ranks hammer the mailbox
// fabric with shuffled isend/irecv orders, shuffled tag posting, mixed
// blocking/nonblocking receives and interleaved collectives, with the
// checker attached. A second battery injects exceptions at varying points
// to exercise abort_all under load. Runs in the TSan suite (ctest -L tsan).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "par/comm.hpp"

namespace kestrel::par {
namespace {

constexpr int kRanks = 8;
constexpr int kTagsPerPeer = 4;
constexpr int kRounds = 6;

FabricOptions checked() {
  FabricOptions opts;
  opts.check = true;
  opts.hang_timeout_s = 60.0;  // generous: TSan slows the fabric a lot
  return opts;
}

/// Payload encoding lets the receiver verify exactly which (sender, tag,
/// round) message matched each receive.
Scalar encode(int sender, int tag, int round) {
  return static_cast<Scalar>(sender * 10000 + tag * 100 + round);
}

template <class T>
void shuffle(std::vector<T>& v, Rng& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    std::swap(v[i - 1],
              v[static_cast<std::size_t>(rng.next_index(
                  static_cast<Index>(i)))]);
  }
}

TEST(FabricStress, ShuffledSendsAndReceivesMatchBySourceAndTag) {
  Fabric::run(kRanks, checked(), [](Comm& comm) {
    const int me = comm.rank();
    Rng rng(static_cast<std::uint64_t>(911 + me));
    for (int round = 0; round < kRounds; ++round) {
      // Send one message per (peer, tag) pair, whole batch shuffled.
      std::vector<std::pair<int, int>> out;
      for (int p = 0; p < kRanks; ++p) {
        if (p == me) continue;
        for (int t = 0; t < kTagsPerPeer; ++t) out.emplace_back(p, t);
      }
      shuffle(out, rng);
      for (const auto& [peer, tag] : out) {
        comm.isend(peer, tag, {encode(me, tag, round)});
      }

      // Receive every expected message; posting order shuffled
      // independently of the send order. Half the pairs go through
      // irecv+wait (waits themselves shuffled), half through blocking recv.
      std::vector<std::pair<int, int>> in;
      for (int p = 0; p < kRanks; ++p) {
        if (p == me) continue;
        for (int t = 0; t < kTagsPerPeer; ++t) in.emplace_back(p, t);
      }
      shuffle(in, rng);
      const std::size_t nposted = in.size() / 2;
      std::vector<std::vector<Scalar>> sinks(nposted);
      std::vector<Request> reqs;
      reqs.reserve(nposted);
      for (std::size_t k = 0; k < nposted; ++k) {
        reqs.push_back(comm.irecv(in[k].first, in[k].second, &sinks[k]));
      }
      std::vector<std::size_t> wait_order(nposted);
      for (std::size_t k = 0; k < nposted; ++k) wait_order[k] = k;
      shuffle(wait_order, rng);
      for (std::size_t k : wait_order) {
        comm.wait(reqs[k]);
        ASSERT_EQ(sinks[k].size(), 1u);
        EXPECT_DOUBLE_EQ(sinks[k][0],
                         encode(in[k].first, in[k].second, round));
      }
      for (std::size_t k = nposted; k < in.size(); ++k) {
        const auto data = comm.recv(in[k].first, in[k].second);
        ASSERT_EQ(data.size(), 1u);
        EXPECT_DOUBLE_EQ(data[0], encode(in[k].first, in[k].second, round));
      }

      // Interleaved collectives keep the rounds aligned and exercise the
      // collective-order checker under churn.
      const Scalar sum = comm.allreduce(static_cast<Scalar>(me));
      EXPECT_DOUBLE_EQ(sum, kRanks * (kRanks - 1) / 2.0);
      comm.barrier();
    }
  });
}

TEST(FabricStress, FifoHoldsPerSourceTagUnderBurst) {
  Fabric::run(kRanks, checked(), [](Comm& comm) {
    const int me = comm.rank();
    const int next = (me + 1) % kRanks;
    const int prev = (me + kRanks - 1) % kRanks;
    constexpr int kBurst = 32;
    for (int i = 0; i < kBurst; ++i) {
      comm.isend(next, 7, {static_cast<Scalar>(i)});
    }
    for (int i = 0; i < kBurst; ++i) {
      const auto data = comm.recv(prev, 7);
      ASSERT_EQ(data.size(), 1u);
      EXPECT_DOUBLE_EQ(data[0], static_cast<Scalar>(i));  // posting order
    }
  });
}

TEST(FabricStress, ExceptionInjectionUnblocksEveryRank) {
  // Inject a failure at rank `victim` after a partial exchange; every other
  // rank is blocked on receives that will never complete and must be woken
  // by abort_all. The root-cause message must survive the pile-up of
  // secondary "fabric aborted" errors.
  for (int victim : {0, 3, 7}) {
    try {
      Fabric::run(kRanks, checked(), [victim](Comm& comm) {
        const int me = comm.rank();
        Rng rng(static_cast<std::uint64_t>(17 * victim + me));
        // Everyone sends to a shuffled half of the peers...
        std::vector<int> peers;
        for (int p = 0; p < kRanks; ++p) {
          if (p != me) peers.push_back(p);
        }
        shuffle(peers, rng);
        for (std::size_t k = 0; k < peers.size() / 2; ++k) {
          comm.isend(peers[k], 1, {1.0});
        }
        if (me == victim) {
          KESTREL_FAIL("injected failure at rank " +
                       std::to_string(victim));
        }
        // ...then tries to receive from everyone, including messages the
        // victim will never send.
        for (int p = 0; p < kRanks; ++p) {
          if (p != me) (void)comm.recv(p, 1);
        }
      });
      FAIL() << "expected the injected failure to propagate";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("injected failure at rank " +
                                           std::to_string(victim)),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(FabricStress, CollectiveBurstStaysOrdered) {
  Fabric::run(kRanks, checked(), [](Comm& comm) {
    Rng rng(static_cast<std::uint64_t>(5 + comm.rank()));
    for (int round = 0; round < 24; ++round) {
      // All ranks derive the same op from the round number, so the
      // sequence is collectively consistent but locally unpredictable.
      switch (round % 3) {
        case 0:
          EXPECT_DOUBLE_EQ(
              comm.allreduce(static_cast<Scalar>(round), Comm::ReduceOp::kMax),
              static_cast<Scalar>(round));
          break;
        case 1:
          comm.barrier();
          break;
        default: {
          const auto all =
              comm.allgatherv(std::vector<Scalar>{Scalar(comm.rank())});
          ASSERT_EQ(all.size(), static_cast<std::size_t>(kRanks));
          EXPECT_DOUBLE_EQ(all[3], 3.0);
          break;
        }
      }
      // Unsynchronized local work of random size between collectives.
      volatile Scalar sink = 0;
      const Index spin = rng.next_index(512);
      for (Index i = 0; i < spin; ++i) sink = sink + 1.0;
    }
  });
}

}  // namespace
}  // namespace kestrel::par
