file(REMOVE_RECURSE
  "CMakeFiles/spmv_kernels_test.dir/spmv_kernels_test.cpp.o"
  "CMakeFiles/spmv_kernels_test.dir/spmv_kernels_test.cpp.o.d"
  "spmv_kernels_test"
  "spmv_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
