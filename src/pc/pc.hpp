#pragma once
// Preconditioner layer (PETSc PC). A Pc maps a residual r to an
// approximate error z ~= A^{-1} r. Implementations: Identity, Jacobi,
// block-Jacobi, SOR/SSOR, ILU(0) and geometric multigrid (pc/mg.hpp).

#include <memory>
#include <string>

#include "base/types.hpp"
#include "vec/vector.hpp"

namespace kestrel::mat {
class Matrix;
class Csr;
}  // namespace kestrel::mat

namespace kestrel::pc {

class Pc {
 public:
  virtual ~Pc() = default;
  /// z = M^{-1} r. z is resized as needed; r is untouched.
  virtual void apply(const Vector& r, Vector& z) const = 0;
  virtual std::string name() const = 0;
};

class Identity final : public Pc {
 public:
  void apply(const Vector& r, Vector& z) const override { z.copy_from(r); }
  std::string name() const override { return "none"; }
};

/// Factory for the simple matrix-based preconditioners: "none", "jacobi",
/// "bjacobi" (block size from opts), "sor", "ilu". Multigrid has its own
/// builder in pc/mg.hpp because it needs a grid hierarchy.
std::unique_ptr<Pc> make_pc(const std::string& type, const mat::Csr& a,
                            Index block_size = 2);

}  // namespace kestrel::pc
