// AVX-512 SELL SpMV — Algorithm 2 of the paper.
//
// One slice of C=8 rows updates 8 contiguous output elements. Slice data is
// stored column-major, so each iteration of the inner loop issues one
// aligned 64-byte load from val, one 32-byte load of 8 column
// indices, one gather from x and one FMA. Padding guarantees every slice is
// a whole number of 8-element columns, so the inner loop needs no masks at
// all; only the store of the (possibly short) last slice is masked
// (section 5.5). Slice heights that are larger multiples of 8 are handled
// with multiple accumulators (ablation of section 5.1).

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell isa=avx512

namespace kestrel::mat::kernels {

namespace {

template <bool Add>
inline void store_lanes(Scalar* y, Index nrows, Index lane0, __m512d acc) {
  // nrows counts valid rows in the whole slice; this vector covers rows
  // [lane0, lane0+8).
  const Index valid = nrows - lane0;
  if (valid >= 8) {
    if constexpr (Add) {
      _mm512_storeu_pd(y, _mm512_add_pd(_mm512_loadu_pd(y), acc));
    } else {
      _mm512_storeu_pd(y, acc);
    }
  } else if (valid > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << valid) - 1u);
    if constexpr (Add) {
      const __m512d old = _mm512_maskz_loadu_pd(mask, y);
      _mm512_mask_storeu_pd(y, mask, _mm512_add_pd(old, acc));
    } else {
      _mm512_mask_storeu_pd(y, mask, acc);
    }
  }
}

template <bool Add>
void sell_spmv_avx512_impl(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;
  if (c == 8) {
    // The production configuration (section 5.1): fixed slice height 8.
    for (Index s = 0; s < a.nslices; ++s) {
      __m512d acc = _mm512_setzero_pd();
      const Index begin = a.sliceptr[s];
      const Index end = a.sliceptr[s + 1];
      for (Index k = begin; k < end; k += 8) {
        const __m512d vals = _mm512_loadu_pd(a.val + k);
        const __m256i idx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
        const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
        acc = _mm512_fmadd_pd(vals, vx, acc);
      }
      const Index row0 = s * 8;
      const Index nrows = (row0 + 8 <= a.m) ? 8 : (a.m - row0);
      store_lanes<Add>(y + row0, nrows, 0, acc);
    }
    return;
  }
  // General c (multiple of 8): c/8 accumulators per slice.
  const Index nv = c / 8;
  __m512d acc[8];  // c <= 64
  for (Index s = 0; s < a.nslices; ++s) {
    for (Index v = 0; v < nv; ++v) acc[v] = _mm512_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    for (Index k = begin; k < end; k += c) {
      for (Index v = 0; v < nv; ++v) {
        const __m512d vals = _mm512_loadu_pd(a.val + k + v * 8);
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a.colidx + k + v * 8));
        const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
        acc[v] = _mm512_fmadd_pd(vals, vx, acc[v]);
      }
    }
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    for (Index v = 0; v < nv && v * 8 < nrows; ++v) {
      store_lanes<Add>(y + row0 + v * 8, nrows, v * 8, acc[v]);
    }
  }
}

// argus-kernel: sell_spmv_avx512
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(8, c)
// argus-traffic: sell
void sell_spmv_avx512(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_avx512_impl<false>(a, x, y);
}
// argus-kernel: sell_spmv_add_avx512
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(8, c)
// argus-traffic: sell
void sell_spmv_add_avx512(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_avx512_impl<true>(a, x, y);
}

/// ESB-style bit-array variant (section 5.3): padded lanes are skipped via
/// per-column masks instead of multiplying stored zeros. Kept for the
/// ablation bench; the paper measured it ~10% SLOWER than the unmasked
/// kernel because of mask-handling overhead and lost load alignment.
// argus-kernel: sell_spmv_bitmask_avx512
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(8, c)
// argus-traffic: none
void sell_spmv_bitmask_avx512(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;  // multiple of 8, enforced by caller
  const Index nv = c / 8;
  __m512d acc[8];  // c <= 64
  for (Index s = 0; s < a.nslices; ++s) {
    for (Index v = 0; v < nv; ++v) acc[v] = _mm512_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    for (Index k = begin; k < end; k += c) {
      // One bitmask word per slice column: bit `lane` of word k/c covers
      // element k+lane, so vector v takes bits [8v, 8v+8).
      const std::uint64_t word = a.bitmask[k / c];
      for (Index v = 0; v < nv; ++v) {
        const __mmask8 mask = static_cast<__mmask8>(word >> (v * 8));
        const __m512d vals = _mm512_maskz_loadu_pd(mask, a.val + k + v * 8);
        const __m256i idx = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(a.colidx + k + v * 8));
        const __m512d vx =
            _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
        acc[v] = _mm512_mask3_fmadd_pd(vals, vx, acc[v], mask);
      }
    }
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    for (Index v = 0; v < nv && v * 8 < nrows; ++v) {
      store_lanes<false>(y + row0 + v * 8, nrows, v * 8, acc[v]);
    }
  }
}

/// Section 5.5 variant: outer loop manually unrolled by two slices with a
/// software prefetch of the next slice's data issued before each inner
/// loop. The paper notes these classic techniques "do not affect the
/// performance significantly" — kept as a dispatchable variant so the
/// ablation bench can verify that on real hardware. Requires c == 8.
// argus-kernel: sell_spmv_avx512_prefetch
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: c == 8
// argus-traffic: sell
void sell_spmv_avx512_prefetch(const SellView& a, const Scalar* x,
                               Scalar* y) {
  const Index ns = a.nslices;
  Index s = 0;
  for (; s + 2 <= ns; s += 2) {
    // prefetch the *following* pair of slices
    if (s + 2 < ns) {
      const Index nk = a.sliceptr[s + 2];
      _mm_prefetch(reinterpret_cast<const char*>(a.val + nk), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(a.colidx + nk),
                   _MM_HINT_T0);
    }
    __m512d acc0 = _mm512_setzero_pd();
    __m512d acc1 = _mm512_setzero_pd();
    const Index b0 = a.sliceptr[s], e0 = a.sliceptr[s + 1];
    const Index e1 = a.sliceptr[s + 2];
    for (Index k = b0; k < e0; k += 8) {
      const __m512d vals = _mm512_loadu_pd(a.val + k);
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
      acc0 = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc0);
    }
    for (Index k = e0; k < e1; k += 8) {
      const __m512d vals = _mm512_loadu_pd(a.val + k);
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
      acc1 = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc1);
    }
    _mm512_storeu_pd(y + s * 8, acc0);
    const Index row1 = (s + 1) * 8;
    const Index nrows1 = (row1 + 8 <= a.m) ? 8 : (a.m - row1);
    store_lanes<false>(y + row1, nrows1, 0, acc1);
  }
  for (; s < ns; ++s) {  // odd tail slice
    __m512d acc = _mm512_setzero_pd();
    for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += 8) {
      const __m512d vals = _mm512_loadu_pd(a.val + k);
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
      acc = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc);
    }
    const Index row0 = s * 8;
    const Index nrows = (row0 + 8 <= a.m) ? 8 : (a.m - row0);
    store_lanes<false>(y + row0, nrows, 0, acc);
  }
}

}  // namespace

void register_sell_avx512() {
  KESTREL_REGISTER_KERNEL(kSellSpmv, kAvx512, sell_spmv_avx512);
  KESTREL_REGISTER_KERNEL(kSellSpmvAdd, kAvx512, sell_spmv_add_avx512);
  KESTREL_REGISTER_KERNEL(kSellSpmvBitmask, kAvx512, sell_spmv_bitmask_avx512);
  KESTREL_REGISTER_KERNEL(kSellSpmvPrefetch, kAvx512,
                          sell_spmv_avx512_prefetch);
}

}  // namespace kestrel::mat::kernels
